// The redesigned experiment API: UeProfile + ScenarioSpec + SpecBuilder +
// presets + fleet_ue_seed. The contracts pinned here are the ones the
// fleet engine rides on: preset N=1 runs are bit-identical to the legacy
// ScenarioConfig runs they replace, a UE's realisation is the same alone
// or inside a fleet, and the deprecated adapter reproduces the legacy
// semantics (including the rotation deployment rule) exactly.
#include "core/scenario_spec.hpp"

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <stdexcept>

#include "core/scenario.hpp"

namespace st::core {
namespace {

using namespace st::sim::literals;

std::string fingerprint(const ScenarioResult& r) {
  std::ostringstream oss;
  for (const auto& e : r.log.entries()) {
    oss << e.t.ns() << '|' << e.component << '|' << e.message << '\n';
  }
  for (const auto& [name, value] : r.counters.all()) {
    oss << name << '=' << value << '\n';
  }
  for (const auto& h : r.handovers) {
    oss << h.from << "->" << h.to << '@' << h.completed.ns() << ' '
        << h.success << h.rach_attempts << '\n';
  }
  oss << r.alignment_gap_db.csv();
  oss << r.serving_snr_db.csv();
  return oss.str();
}

// ---- fleet_ue_seed --------------------------------------------------------

TEST(FleetUeSeed, UeZeroInheritsTheFleetSeed) {
  // The single-mobile path must stay bit-identical to the legacy runs, so
  // UE 0 must see exactly the fleet seed, not a derived one.
  EXPECT_EQ(fleet_ue_seed(1, 0), 1u);
  EXPECT_EQ(fleet_ue_seed(1000, 0), 1000u);
  EXPECT_EQ(fleet_ue_seed(0xDEADBEEF, 0), 0xDEADBEEFu);
}

TEST(FleetUeSeed, LaterUesGetDecorrelatedDistinctRoots) {
  std::set<std::uint64_t> roots;
  for (std::size_t ue = 0; ue < 64; ++ue) {
    roots.insert(fleet_ue_seed(1000, ue));
  }
  EXPECT_EQ(roots.size(), 64u);
  // Adjacent fleet seeds (the bench ladder uses arithmetic seed spacing)
  // must not alias each other's per-UE roots.
  EXPECT_NE(fleet_ue_seed(1000, 1), fleet_ue_seed(1001, 1));
  EXPECT_NE(fleet_ue_seed(1000, 2), fleet_ue_seed(1001, 1));
}

TEST(FleetUeSeed, DerivationIsAPureFunction) {
  for (std::size_t ue = 0; ue < 8; ++ue) {
    EXPECT_EQ(fleet_ue_seed(77, ue), fleet_ue_seed(77, ue));
  }
}

// ---- presets reproduce the legacy single-UE runs --------------------------

class PresetEquivalence : public ::testing::TestWithParam<MobilityScenario> {};

TEST_P(PresetEquivalence, SingleUePresetMatchesLegacyConfigBitForBit) {
  const MobilityScenario mobility = GetParam();

  ScenarioConfig legacy;
  legacy.mobility = mobility;
  legacy.n_cells = mobility == MobilityScenario::kVehicular ? 3U : 2U;
  legacy.duration = 8'000_ms;
  legacy.seed = 1000;

  const ScenarioSpec spec =
      SpecBuilder(preset::paper(mobility)).duration(8'000_ms).seed(1000).build();
  ASSERT_EQ(spec.ue_count(), 1u);

  EXPECT_EQ(fingerprint(run_scenario(legacy)), fingerprint(run_scenario(spec)));
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, PresetEquivalence,
                         ::testing::Values(MobilityScenario::kHumanWalk,
                                           MobilityScenario::kRotation,
                                           MobilityScenario::kVehicular));

TEST(Presets, PaperFramesMatchTheEvaluationSetups) {
  const ScenarioSpec walk = preset::paper_walk();
  EXPECT_EQ(walk.n_cells, 2u);
  EXPECT_EQ(walk.duration, 25'000_ms);
  ASSERT_EQ(walk.ue_count(), 1u);
  EXPECT_EQ(walk.ues.front().mobility, MobilityScenario::kHumanWalk);

  const ScenarioSpec rotation = preset::paper_rotation();
  EXPECT_EQ(rotation.n_cells, 2u);
  // The paper's rotation runs use the tighter cell edge.
  EXPECT_DOUBLE_EQ(rotation.deployment.inter_site_m, 40.0);
  EXPECT_EQ(rotation.ues.front().mobility, MobilityScenario::kRotation);

  const ScenarioSpec vehicular = preset::paper_vehicular();
  EXPECT_EQ(vehicular.n_cells, 3u);
  EXPECT_EQ(vehicular.ues.front().mobility, MobilityScenario::kVehicular);
  EXPECT_TRUE(vehicular.ues.front().chain_handovers);
}

// ---- standalone vs fleet equivalence --------------------------------------

TEST(ScenarioSpecFleet, UeRealisationIsIdenticalAloneAndInAFleet) {
  // Three heterogeneous mobiles in one frame. Each UE k, run standalone
  // from a single-UE spec seeded with its fleet root, must reproduce its
  // in-fleet trajectory bit for bit — the per-UE splitmix derivation is
  // what makes fleet membership invisible to the individual mobile.
  ScenarioSpec fleet = SpecBuilder(preset::paper_vehicular())
                           .duration(3'000_ms)
                           .seed(424242)
                           .ue(preset::walking_ue())
                           .ue(preset::rotating_ue())
                           .build();
  ASSERT_EQ(fleet.ue_count(), 3u);

  for (std::size_t ue = 0; ue < fleet.ue_count(); ++ue) {
    const ScenarioResult in_fleet = run_scenario_ue(fleet, ue);

    ScenarioSpec alone = fleet;
    alone.ues = {fleet.ues[ue]};
    alone.seed = fleet_ue_seed(fleet.seed, ue);
    const ScenarioResult standalone = run_scenario(alone);

    EXPECT_EQ(fingerprint(in_fleet), fingerprint(standalone)) << "ue " << ue;
  }
}

TEST(ScenarioSpecFleet, RunScenarioRejectsFleets) {
  const ScenarioSpec fleet =
      SpecBuilder(preset::paper_walk()).ue(preset::walking_ue()).build();
  EXPECT_THROW((void)run_scenario(fleet), std::invalid_argument);
}

TEST(ScenarioSpecFleet, RunScenarioUeRejectsOutOfRangeIndex) {
  const ScenarioSpec spec = preset::paper_walk();
  EXPECT_THROW((void)run_scenario_ue(spec, 1), std::out_of_range);
}

// ---- builder validation ---------------------------------------------------

TEST(SpecBuilder, ValidatesAtBuild) {
  EXPECT_THROW((void)SpecBuilder().build(), std::invalid_argument);  // no UEs
  EXPECT_THROW((void)SpecBuilder(preset::paper_walk()).cells(0).build(),
               std::invalid_argument);
  EXPECT_THROW((void)SpecBuilder(preset::paper_walk())
                   .duration(sim::Duration::milliseconds(0))
                   .build(),
               std::invalid_argument);
  EXPECT_THROW((void)SpecBuilder(preset::paper_walk())
                   .metric_period(sim::Duration::milliseconds(0))
                   .build(),
               std::invalid_argument);
}

TEST(SpecBuilder, UesAppendsSharedProfiles) {
  const ScenarioSpec spec =
      SpecBuilder().cells(2).ues(5, preset::walking_ue()).build();
  EXPECT_EQ(spec.ue_count(), 5u);
  for (const UeProfile& ue : spec.ues) {
    EXPECT_EQ(ue.mobility, MobilityScenario::kHumanWalk);
  }
}

// ---- deprecated adapter ---------------------------------------------------
// The single place deprecated to_spec() is still exercised: one
// adapter-equivalence test pinning that the conversion reproduces the
// legacy semantics (field carry-over, run fingerprint, rotation rule).

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

TEST(ScenarioConfigAdapter, ToSpecReproducesLegacySemantics) {
  ScenarioConfig config;
  config.mobility = MobilityScenario::kHumanWalk;
  config.duration = 6'000_ms;
  config.seed = 99;
  config.ue_beamwidth_deg = 60.0;
  const ScenarioSpec spec = to_spec(config);
  ASSERT_EQ(spec.ue_count(), 1u);
  EXPECT_EQ(spec.seed, 99u);
  EXPECT_DOUBLE_EQ(spec.ues.front().ue_beamwidth_deg, 60.0);
  EXPECT_EQ(fingerprint(run_scenario(config)), fingerprint(run_scenario(spec)));

  // Legacy rotation semantics: the rotation scenario ran at
  // min(inter_site_m, rotation_inter_site_m). The adapter folds that rule
  // into the spec's deployment, where it is now explicit.
  ScenarioConfig rotation;
  rotation.mobility = MobilityScenario::kRotation;
  EXPECT_DOUBLE_EQ(to_spec(rotation).deployment.inter_site_m, 40.0);

  rotation.rotation_inter_site_m = 30.0;
  EXPECT_DOUBLE_EQ(to_spec(rotation).deployment.inter_site_m, 30.0);

  rotation.mobility = MobilityScenario::kHumanWalk;
  EXPECT_DOUBLE_EQ(to_spec(rotation).deployment.inter_site_m,
                   rotation.deployment.inter_site_m);
}

#pragma GCC diagnostic pop

}  // namespace
}  // namespace st::core
