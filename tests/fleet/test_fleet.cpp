// The fleet engine: N mobiles against one shared deployment, sharded
// across a thread pool. The load-bearing contract is determinism — the
// parallel schedule must be bit-identical to the serial one, per UE —
// plus obs isolation (each UE owns its ring buffers) and faithful
// aggregation into the FleetReport.
#include "fleet/engine.hpp"

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/scenario.hpp"

namespace st::fleet {
namespace {

using namespace st::sim::literals;

std::string fingerprint(const core::ScenarioResult& r) {
  std::ostringstream oss;
  for (const auto& e : r.log.entries()) {
    oss << e.t.ns() << '|' << e.component << '|' << e.message << '\n';
  }
  for (const auto& [name, value] : r.counters.all()) {
    oss << name << '=' << value << '\n';
  }
  for (const auto& h : r.handovers) {
    oss << h.from << "->" << h.to << '@' << h.completed.ns() << ' '
        << h.success << h.rach_attempts << '\n';
  }
  oss << r.alignment_gap_db.csv();
  oss << r.serving_snr_db.csv();
  return oss.str();
}

/// A heterogeneous fleet on the three-cell row (walk / rotation /
/// vehicular profiles cycling), short enough for the test budget.
core::ScenarioSpec fleet_spec(std::size_t n_ues, sim::Duration duration) {
  core::SpecBuilder builder;
  builder.cells(3).duration(duration).seed(1000);
  const core::UeProfile profiles[] = {core::preset::walking_ue(),
                                      core::preset::rotating_ue(),
                                      core::preset::vehicular_ue()};
  for (std::size_t i = 0; i < n_ues; ++i) {
    builder.ue(profiles[i % 3]);
  }
  return builder.build();
}

TEST(FleetEngine, SerialAndParallelSchedulesAreBitIdentical) {
  // The acceptance bar: a 64-UE fleet, serial vs a real pool, every UE's
  // realisation compared bit for bit.
  const core::ScenarioSpec spec = fleet_spec(64, 1'000_ms);
  const FleetResult serial = run_fleet(spec, 1);
  const FleetResult parallel = run_fleet(spec, 4);

  EXPECT_EQ(serial.threads_used, 1u);
  EXPECT_EQ(parallel.threads_used, 4u);
  ASSERT_EQ(serial.ue_count(), 64u);
  ASSERT_EQ(parallel.ue_count(), 64u);
  for (std::size_t ue = 0; ue < serial.ue_count(); ++ue) {
    EXPECT_EQ(fingerprint(serial.ue_results[ue]),
              fingerprint(parallel.ue_results[ue]))
        << "ue " << ue;
  }
  // Merged statistics (sums over per-UE runs) agree too; wall-clock
  // fields are the only non-deterministic content of a FleetResult.
  EXPECT_EQ(serial.engine.events_executed, parallel.engine.events_executed);
  EXPECT_EQ(serial.snapshot_cache.hits, parallel.snapshot_cache.hits);
  EXPECT_EQ(serial.snapshot_cache.refreshes, parallel.snapshot_cache.refreshes);
  EXPECT_EQ(serial.snapshot_cache.cold_misses,
            parallel.snapshot_cache.cold_misses);
  EXPECT_EQ(serial.ssb_observations, parallel.ssb_observations);
}

TEST(FleetEngine, GridFleetWithPolicyIsBitIdenticalToo) {
  // The multi-cell tentpole must not cost determinism: a 64-UE fleet on
  // the 3x3 grid with the neighbour-ranking policy enabled (static
  // per-cell load, rival scans, penalty timers) is still bit-identical
  // serial vs parallel.
  core::ScenarioSpec spec = core::preset::grid_walk();
  spec.duration = 1'000_ms;
  spec.seed = 1000;
  spec.ues.assign(64, spec.ues.front());
  spec = core::SpecBuilder(std::move(spec)).build();
  const FleetResult serial = run_fleet(spec, 1);
  const FleetResult parallel = run_fleet(spec, 4);
  ASSERT_EQ(serial.ue_count(), 64u);
  ASSERT_EQ(parallel.ue_count(), 64u);
  for (std::size_t ue = 0; ue < serial.ue_count(); ++ue) {
    EXPECT_EQ(fingerprint(serial.ue_results[ue]),
              fingerprint(parallel.ue_results[ue]))
        << "ue " << ue;
  }
  EXPECT_EQ(serial.engine.events_executed, parallel.engine.events_executed);
  EXPECT_EQ(serial.ssb_observations, parallel.ssb_observations);
}

TEST(FleetEngine, RateLayerIsBitIdenticalSerialVsParallel) {
  // The rate layer's interference sum (grid_walk carries graded per-cell
  // load, so every sample folds in non-serving cells) and the fixed-order
  // RateStats merge must be bit-identical serial vs parallel on a 64-UE
  // multi-cell fleet — doubles compared exactly, not approximately.
  core::ScenarioSpec spec = core::preset::grid_walk();
  spec.duration = 1'000_ms;
  spec.seed = 1000;
  spec.ues.assign(64, spec.ues.front());
  spec = core::SpecBuilder(std::move(spec)).build();
  ASSERT_TRUE(spec.rate.enabled);

  const FleetResult serial = run_fleet(spec, 1);
  const FleetResult parallel = run_fleet(spec, 4);
  ASSERT_EQ(serial.ue_count(), 64u);
  for (std::size_t ue = 0; ue < serial.ue_count(); ++ue) {
    const rate::RateStats& a = serial.ue_results[ue].rate;
    const rate::RateStats& b = parallel.ue_results[ue].rate;
    EXPECT_EQ(a.samples, b.samples) << "ue " << ue;
    EXPECT_EQ(a.served_samples, b.served_samples) << "ue " << ue;
    EXPECT_EQ(a.bits, b.bits) << "ue " << ue;
    EXPECT_EQ(a.sum_sinr_db, b.sum_sinr_db) << "ue " << ue;
    EXPECT_EQ(a.sum_cqi, b.sum_cqi) << "ue " << ue;
    EXPECT_EQ(a.outage_events, b.outage_events) << "ue " << ue;
    EXPECT_EQ(a.outage_ms, b.outage_ms) << "ue " << ue;
    EXPECT_GT(a.samples, 0u) << "ue " << ue;
  }
  // The merged totals ride the same fixed-order reduction.
  EXPECT_EQ(serial.rate.bits, parallel.rate.bits);
  EXPECT_EQ(serial.rate.sum_sinr_db, parallel.rate.sum_sinr_db);
  EXPECT_EQ(serial.rate.outage_ms, parallel.rate.outage_ms);
  EXPECT_EQ(serial.rate.longest_outage_ms, parallel.rate.longest_outage_ms);

  // And the report surfaces them: per-UE rows plus fleet distributions.
  const obs::FleetReport report = build_fleet_report(spec, serial);
  EXPECT_TRUE(report.rate_enabled);
  ASSERT_EQ(report.ues.size(), 64u);
  EXPECT_GT(report.mean_throughput_mbps, 0.0);
  EXPECT_EQ(report.ues.front().throughput_mbps,
            serial.ue_results.front().rate.mean_throughput_mbps());
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"throughput\""), std::string::npos);
  EXPECT_NE(json.find("\"outage\""), std::string::npos);
}

TEST(FleetEngine, SingleUeFleetMatchesRunScenario) {
  core::ScenarioSpec spec = core::preset::paper_walk();
  spec.duration = 2'000_ms;
  spec.seed = 1000;
  const FleetResult fleet = run_fleet(spec);
  ASSERT_EQ(fleet.ue_count(), 1u);
  EXPECT_EQ(fingerprint(fleet.ue_results.front()),
            fingerprint(core::run_scenario(spec)));
}

TEST(FleetEngine, EmptyFleetIsRejected) {
  core::ScenarioSpec spec = core::preset::paper_walk();
  spec.ues.clear();
  EXPECT_THROW((void)run_fleet(spec), std::invalid_argument);
}

TEST(FleetEngine, TracedUesOwnPrivateRecorders) {
  // One TraceRecorder per mobile, never shared: every traced UE surfaces
  // its own ring buffers, at distinct addresses, each with events.
  core::ScenarioSpec spec = fleet_spec(6, 1'000_ms);
  spec.collect_trace = true;
  spec.trace_buffer_capacity = 1 << 8;
  const FleetResult result = run_fleet(spec, 3);

  std::set<const obs::TraceRecorder*> recorders;
  for (const core::ScenarioResult& ue_result : result.ue_results) {
    ASSERT_NE(ue_result.trace, nullptr);
    EXPECT_GT(ue_result.trace->total_events(), 0u);
    recorders.insert(ue_result.trace.get());
  }
  EXPECT_EQ(recorders.size(), result.ue_count());
}

TEST(FleetEngine, MergedStatsSumThePerUeRuns) {
  const core::ScenarioSpec spec = fleet_spec(5, 1'000_ms);
  const FleetResult result = run_fleet(spec, 2);

  std::uint64_t events = 0;
  std::uint64_t hits = 0;
  std::uint64_t refreshes = 0;
  std::uint64_t cold = 0;
  std::uint64_t incremental = 0;
  std::uint64_t ssb = 0;
  double sim_seconds = 0.0;
  for (const core::ScenarioResult& ue_result : result.ue_results) {
    events += ue_result.engine.events_executed;
    hits += ue_result.snapshot_cache.hits;
    refreshes += ue_result.snapshot_cache.refreshes;
    cold += ue_result.snapshot_cache.cold_misses;
    incremental += ue_result.snapshot_cache.incremental_builds;
    ssb += ue_result.ssb_observations;
    sim_seconds += ue_result.engine.sim_seconds;
  }
  EXPECT_EQ(result.engine.events_executed, events);
  EXPECT_EQ(result.snapshot_cache.hits, hits);
  EXPECT_EQ(result.snapshot_cache.refreshes, refreshes);
  EXPECT_EQ(result.snapshot_cache.cold_misses, cold);
  EXPECT_EQ(result.snapshot_cache.incremental_builds, incremental);
  EXPECT_EQ(result.ssb_observations, ssb);
  EXPECT_DOUBLE_EQ(result.engine.sim_seconds, sim_seconds);
  EXPECT_GE(result.wall_seconds, 0.0);
}

TEST(FleetReport, AggregatesPerUeRowsAndTotals) {
  const core::ScenarioSpec spec = fleet_spec(6, 2'000_ms);
  const FleetResult result = run_fleet(spec, 2);
  const obs::FleetReport report = build_fleet_report(spec, result);

  EXPECT_EQ(report.schema, "silent-tracker/fleet-report/v1");
  EXPECT_EQ(report.seed, spec.seed);
  EXPECT_EQ(report.n_ues, 6u);
  EXPECT_EQ(report.n_cells, 3u);
  ASSERT_EQ(report.ues.size(), 6u);

  std::size_t handovers = 0;
  std::uint64_t ssb = 0;
  for (std::size_t ue = 0; ue < report.ues.size(); ++ue) {
    const obs::FleetUeReport& row = report.ues[ue];
    EXPECT_EQ(row.ue, ue);
    EXPECT_EQ(row.seed, core::fleet_ue_seed(spec.seed, ue));
    EXPECT_EQ(row.scenario,
              std::string(core::to_string(spec.ues[ue].mobility)));
    handovers += row.handovers_total;
    ssb += row.ssb_observations;
  }
  EXPECT_EQ(report.handovers_total, handovers);
  EXPECT_EQ(report.ssb_observations, ssb);
  EXPECT_EQ(report.ssb_observations, result.ssb_observations);

  // Rendering round-trips: the JSON carries the schema and one object per
  // UE; the human summary mentions the fleet size.
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"silent-tracker/fleet-report/v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"ues\""), std::string::npos);
  EXPECT_FALSE(report.summary_text().empty());
}

TEST(FleetReport, PerCellBlockCarriesLoadAndHandoverFlows) {
  // The multi-cell report surface: one row per cell with the configured
  // offered load, and in/out flows that sum to the fleet's successful
  // handovers on each side.
  core::ScenarioSpec spec = core::preset::grid_walk();
  spec.duration = 2'000_ms;
  spec.seed = 1000;
  spec.ues.assign(4, spec.ues.front());
  spec = core::SpecBuilder(std::move(spec)).build();
  const FleetResult result = run_fleet(spec, 2);
  const obs::FleetReport report = build_fleet_report(spec, result);

  ASSERT_EQ(report.per_cell.size(), spec.n_cells);
  std::uint64_t in = 0;
  std::uint64_t out = 0;
  for (std::size_t cell = 0; cell < report.per_cell.size(); ++cell) {
    const obs::FleetCellReport& row = report.per_cell[cell];
    EXPECT_EQ(row.cell, cell);
    EXPECT_DOUBLE_EQ(row.load, spec.cell_load[cell]);
    in += row.handovers_in;
    out += row.handovers_out;
  }
  EXPECT_EQ(in, report.handovers_successful);
  EXPECT_EQ(out, report.handovers_successful);

  // The JSON rendering carries the block and the ping-pong aggregate.
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"per_cell\""), std::string::npos);
  EXPECT_NE(json.find("\"ping_pong_rate\""), std::string::npos);
}

TEST(FleetChannelBatch, BestPairsMatchPerUeGroundTruth) {
  // The batched fast path must agree bit-for-bit with per-UE environments
  // built from the same spec and queried at the same instants.
  const core::ScenarioSpec spec = fleet_spec(4, 2'000_ms);
  FleetChannelBatch batch(spec);
  ASSERT_EQ(batch.ue_count(), 4u);
  ASSERT_EQ(batch.cell_count(), 3u);

  const net::Deployment deployment = core::make_deployment(spec);
  std::vector<std::unique_ptr<net::RadioEnvironment>> reference;
  for (std::size_t ue = 0; ue < spec.ues.size(); ++ue) {
    reference.push_back(core::make_ue_environment(spec, ue, deployment));
  }

  std::vector<phy::Channel::BestPair> pairs;
  for (int step = 0; step < 20; ++step) {
    const sim::Time t =
        sim::Time::zero() + sim::Duration::milliseconds(step * 10);
    batch.best_pairs(t, pairs);
    ASSERT_EQ(pairs.size(), batch.ue_count() * batch.cell_count());
    for (std::size_t ue = 0; ue < batch.ue_count(); ++ue) {
      for (std::size_t cell = 0; cell < batch.cell_count(); ++cell) {
        const phy::Channel::BestPair want =
            reference[ue]->ground_truth_best_pair(
                static_cast<net::CellId>(cell), t);
        const phy::Channel::BestPair& got =
            pairs[ue * batch.cell_count() + cell];
        ASSERT_EQ(got.tx_beam, want.tx_beam)
            << "ue " << ue << " cell " << cell << " step " << step;
        ASSERT_EQ(got.rx_beam, want.rx_beam);
        ASSERT_EQ(got.rx_power_dbm, want.rx_power_dbm);
      }
    }
  }
}

TEST(FleetChannelBatch, SteppedTrajectoryKeepsTheCacheWarm) {
  // The throughput claim's precondition: stepping a fleet through time
  // turns nearly every query into a hit or an incremental refresh. Only
  // the very first instant builds cold.
  const core::ScenarioSpec spec = fleet_spec(8, 10'000_ms);
  FleetChannelBatch batch(spec);
  std::vector<phy::Channel::BestPair> pairs;
  const int steps = 200;
  for (int step = 0; step < steps; ++step) {
    batch.best_pairs(
        sim::Time::zero() + sim::Duration::milliseconds(step * 10), pairs);
  }
  const net::SnapshotCacheStats stats = batch.stats();
  EXPECT_EQ(stats.cold_misses, batch.ue_count() * batch.cell_count());
  EXPECT_EQ(stats.invalidations, 0u);  // one environment per UE: no eviction
  EXPECT_GE(stats.hit_rate(), 0.9);
  EXPECT_EQ(stats.full_builds, stats.cold_misses);
  EXPECT_EQ(stats.incremental_builds, stats.refreshes);
  EXPECT_EQ(stats.pair_sweeps,
            static_cast<std::uint64_t>(steps) * batch.ue_count() *
                batch.cell_count());
}

TEST(FleetChannelBatch, EmptyFleetIsRejected) {
  core::ScenarioSpec spec = core::preset::paper_walk();
  spec.ues.clear();
  EXPECT_THROW(FleetChannelBatch batch(spec), std::invalid_argument);
}

TEST(FleetReport, ReactiveUesContributeNoAlignmentSamples) {
  // The reactive baseline never tracks a neighbour, so its row keeps the
  // "no samples" sentinel and the alignment histogram only counts the
  // tracker UEs.
  core::SpecBuilder builder;
  core::UeProfile reactive = core::preset::walking_ue();
  reactive.protocol = core::ProtocolKind::kReactive;
  const core::ScenarioSpec spec = builder.cells(2)
                                      .duration(2'000_ms)
                                      .seed(1000)
                                      .ue(core::preset::walking_ue())
                                      .ue(reactive)
                                      .build();
  const FleetResult result = run_fleet(spec, 1);
  const obs::FleetReport report = build_fleet_report(spec, result);
  ASSERT_EQ(report.ues.size(), 2u);
  EXPECT_LT(report.ues[1].alignment_fraction, 0.0);
  EXPECT_LE(report.alignment_fraction.count, 1u);
}

}  // namespace
}  // namespace st::fleet
