#include "common/pose.hpp"

#include <gtest/gtest.h>

#include "common/angles.hpp"

namespace st {
namespace {

TEST(Pose, DirectionToTarget) {
  Pose p;
  p.position = {0.0, 0.0, 0.0};
  const Vec3 d = p.direction_to({10.0, 0.0, 0.0});
  EXPECT_NEAR(d.x, 1.0, 1e-12);
  EXPECT_NEAR(d.y, 0.0, 1e-12);
}

TEST(Pose, BodyFrameRotatesWithOrientation) {
  Pose p;
  p.position = {0.0, 0.0, 0.0};
  p.orientation = Quaternion::from_yaw(kPi / 2.0);
  // World +x appears at body-frame azimuth -90 deg after a +90 deg yaw.
  const Vec3 body = p.to_body_frame({1.0, 0.0, 0.0});
  EXPECT_NEAR(body.azimuth(), -kPi / 2.0, 1e-12);
}

TEST(Pose, WorldBodyRoundTrip) {
  Pose p;
  p.orientation = Quaternion::from_axis_angle({0.3, 0.5, 1.0}, 0.77);
  const Vec3 v{0.2, -0.9, 0.4};
  const Vec3 round = p.to_world_frame(p.to_body_frame(v));
  EXPECT_NEAR(round.x, v.x, 1e-12);
  EXPECT_NEAR(round.y, v.y, 1e-12);
  EXPECT_NEAR(round.z, v.z, 1e-12);
}

TEST(Pose, AzimuthToCombinesPositionAndYaw) {
  Pose p;
  p.position = {10.0, 10.0, 0.0};
  p.orientation = Quaternion::from_yaw(deg_to_rad(45.0));
  // Target due east of the device; device faces north-east.
  const double az = p.azimuth_to({20.0, 10.0, 0.0});
  EXPECT_NEAR(az, deg_to_rad(-45.0), 1e-12);
}

TEST(Pose, RotationScenarioSweepsAoA) {
  // The paper's rotation experiment in miniature: a fixed base station is
  // seen at a body-frame azimuth that advances opposite to device yaw.
  const Vec3 bs{0.0, 10.0, 0.0};
  Pose p;
  p.position = {0.0, 0.0, 0.0};
  const double base_az = [&] {
    p.orientation = Quaternion::identity();
    return p.azimuth_to(bs);
  }();
  p.orientation = Quaternion::from_yaw(deg_to_rad(30.0));
  EXPECT_NEAR(angular_difference(p.azimuth_to(bs), base_az),
              deg_to_rad(30.0), 1e-12);
}

}  // namespace
}  // namespace st
