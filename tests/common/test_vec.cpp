#include "common/vec.hpp"

#include <gtest/gtest.h>

#include "common/angles.hpp"

namespace st {
namespace {

TEST(Vec3, Arithmetic) {
  const Vec3 a{1.0, 2.0, 3.0};
  const Vec3 b{4.0, -5.0, 6.0};
  EXPECT_EQ(a + b, (Vec3{5.0, -3.0, 9.0}));
  EXPECT_EQ(a - b, (Vec3{-3.0, 7.0, -3.0}));
  EXPECT_EQ(2.0 * a, (Vec3{2.0, 4.0, 6.0}));
  EXPECT_EQ(a * 2.0, 2.0 * a);
  EXPECT_EQ(a / 2.0, (Vec3{0.5, 1.0, 1.5}));
}

TEST(Vec3, CompoundAssignment) {
  Vec3 v{1.0, 1.0, 1.0};
  v += Vec3{1.0, 2.0, 3.0};
  EXPECT_EQ(v, (Vec3{2.0, 3.0, 4.0}));
  v -= Vec3{2.0, 3.0, 4.0};
  EXPECT_EQ(v, (Vec3{0.0, 0.0, 0.0}));
}

TEST(Vec3, DotAndCross) {
  const Vec3 x{1.0, 0.0, 0.0};
  const Vec3 y{0.0, 1.0, 0.0};
  EXPECT_DOUBLE_EQ(x.dot(y), 0.0);
  EXPECT_EQ(x.cross(y), (Vec3{0.0, 0.0, 1.0}));
  EXPECT_EQ(y.cross(x), (Vec3{0.0, 0.0, -1.0}));
  EXPECT_DOUBLE_EQ((Vec3{3.0, 4.0, 0.0}.dot(Vec3{3.0, 4.0, 0.0})), 25.0);
}

TEST(Vec3, NormAndNormalized) {
  const Vec3 v{3.0, 4.0, 0.0};
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.norm_sq(), 25.0);
  const Vec3 u = v.normalized();
  EXPECT_NEAR(u.norm(), 1.0, 1e-12);
  EXPECT_NEAR(u.x, 0.6, 1e-12);
}

TEST(Vec3, ZeroVectorNormalizesToUnitXNotNaN) {
  const Vec3 u = Vec3{}.normalized();
  EXPECT_EQ(u, (Vec3{1.0, 0.0, 0.0}));
}

TEST(Vec3, AzimuthElevation) {
  EXPECT_DOUBLE_EQ((Vec3{1.0, 0.0, 0.0}.azimuth()), 0.0);
  EXPECT_NEAR((Vec3{0.0, 1.0, 0.0}.azimuth()), kPi / 2.0, 1e-12);
  EXPECT_NEAR((Vec3{-1.0, 0.0, 0.0}.azimuth()), kPi, 1e-12);
  EXPECT_NEAR((Vec3{1.0, 0.0, 1.0}.elevation()), kPi / 4.0, 1e-12);
  EXPECT_NEAR((Vec3{1.0, 0.0, -1.0}.elevation()), -kPi / 4.0, 1e-12);
}

TEST(Vec3, DirectionFromAnglesRoundTrip) {
  const double az = deg_to_rad(37.0);
  const double el = deg_to_rad(-12.0);
  const Vec3 d = direction_from_angles(az, el);
  EXPECT_NEAR(d.norm(), 1.0, 1e-12);
  EXPECT_NEAR(d.azimuth(), az, 1e-12);
  EXPECT_NEAR(d.elevation(), el, 1e-12);
}

TEST(Vec3, Distance) {
  EXPECT_DOUBLE_EQ(distance(Vec3{0.0, 0.0, 0.0}, Vec3{3.0, 4.0, 0.0}), 5.0);
  EXPECT_DOUBLE_EQ(distance(Vec3{1.0, 1.0, 1.0}, Vec3{1.0, 1.0, 1.0}), 0.0);
}

}  // namespace
}  // namespace st
