#include "common/logging.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace st {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_level_ = Logger::global().level();
    Logger::global().set_sink(sink_);
  }
  void TearDown() override {
    Logger::global().set_level(saved_level_);
    // Restore the default sink by pointing back at a fresh stream is not
    // possible (cerr is the nullptr default); leave our sink set only for
    // the duration — set level back and detach by setting a static.
    Logger::global().set_sink(detached_);
  }

  std::ostringstream sink_;
  static std::ostringstream detached_;
  LogLevel saved_level_ = LogLevel::kWarning;
};

std::ostringstream LoggingTest::detached_;

TEST_F(LoggingTest, RespectsLevelThreshold) {
  Logger::global().set_level(LogLevel::kWarning);
  Logger::global().debug("test", "hidden");
  Logger::global().info("test", "hidden too");
  Logger::global().warning("test", "visible");
  EXPECT_EQ(sink_.str().find("hidden"), std::string::npos);
  EXPECT_NE(sink_.str().find("visible"), std::string::npos);
}

TEST_F(LoggingTest, FormatsComponentAndLevel) {
  Logger::global().set_level(LogLevel::kDebug);
  Logger::global().error("rach", "preamble lost");
  EXPECT_NE(sink_.str().find("[ERROR] rach: preamble lost"),
            std::string::npos);
}

TEST_F(LoggingTest, OffSilencesEverything) {
  Logger::global().set_level(LogLevel::kOff);
  Logger::global().error("x", "nope");
  EXPECT_TRUE(sink_.str().empty());
}

TEST_F(LoggingTest, EnabledQueryMatchesBehaviour) {
  Logger::global().set_level(LogLevel::kInfo);
  EXPECT_FALSE(Logger::global().enabled(LogLevel::kDebug));
  EXPECT_TRUE(Logger::global().enabled(LogLevel::kInfo));
  EXPECT_TRUE(Logger::global().enabled(LogLevel::kError));
}

TEST(LogMessage, ConcatenatesStreamables) {
  EXPECT_EQ(log_message("rss=", -62.5, " beam=", 7), "rss=-62.5 beam=7");
  EXPECT_EQ(log_message("solo"), "solo");
}

TEST(LogLevelNames, AllDistinct) {
  EXPECT_EQ(to_string(LogLevel::kDebug), "DEBUG");
  EXPECT_EQ(to_string(LogLevel::kInfo), "INFO");
  EXPECT_EQ(to_string(LogLevel::kWarning), "WARN");
  EXPECT_EQ(to_string(LogLevel::kError), "ERROR");
  EXPECT_EQ(to_string(LogLevel::kOff), "OFF");
}

}  // namespace
}  // namespace st
