#include "common/logging.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace st {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_level_ = Logger::global().level();
    Logger::global().set_sink(sink_);
  }
  void TearDown() override {
    Logger::global().set_level(saved_level_);
    // Restore the default sink by pointing back at a fresh stream is not
    // possible (cerr is the nullptr default); leave our sink set only for
    // the duration — set level back and detach by setting a static.
    Logger::global().set_sink(detached_);
  }

  std::ostringstream sink_;
  static std::ostringstream detached_;
  LogLevel saved_level_ = LogLevel::kWarning;
};

std::ostringstream LoggingTest::detached_;

TEST_F(LoggingTest, RespectsLevelThreshold) {
  Logger::global().set_level(LogLevel::kWarning);
  Logger::global().debug("test", "hidden");
  Logger::global().info("test", "hidden too");
  Logger::global().warning("test", "visible");
  EXPECT_EQ(sink_.str().find("hidden"), std::string::npos);
  EXPECT_NE(sink_.str().find("visible"), std::string::npos);
}

TEST_F(LoggingTest, FormatsComponentAndLevel) {
  Logger::global().set_level(LogLevel::kDebug);
  Logger::global().error("rach", "preamble lost");
  EXPECT_NE(sink_.str().find("[ERROR] rach: preamble lost"),
            std::string::npos);
}

TEST_F(LoggingTest, OffSilencesEverything) {
  Logger::global().set_level(LogLevel::kOff);
  Logger::global().error("x", "nope");
  EXPECT_TRUE(sink_.str().empty());
}

TEST_F(LoggingTest, EnabledQueryMatchesBehaviour) {
  Logger::global().set_level(LogLevel::kInfo);
  EXPECT_FALSE(Logger::global().enabled(LogLevel::kDebug));
  EXPECT_TRUE(Logger::global().enabled(LogLevel::kInfo));
  EXPECT_TRUE(Logger::global().enabled(LogLevel::kError));
}

// Concurrent writers through the global logger: the sink mutex must keep
// every line intact (no interleaved fragments, no lost lines). Run under
// TSan this also exercises the level/sink synchronisation.
TEST_F(LoggingTest, ConcurrentWritersProduceIntactLines) {
  Logger::global().set_level(LogLevel::kInfo);
  constexpr int kThreads = 4;
  constexpr int kLinesPerThread = 250;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int id = 0; id < kThreads; ++id) {
    threads.emplace_back([id] {
      for (int i = 0; i < kLinesPerThread; ++i) {
        Logger::global().info("mt",
                              log_message("thread=", id, " line=", i, " end"));
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }

  std::istringstream in(sink_.str());
  int lines = 0;
  for (std::string line; std::getline(in, line); ++lines) {
    // Every line is exactly one whole record.
    EXPECT_NE(line.find("[INFO] mt: thread="), std::string::npos) << line;
    EXPECT_EQ(line.find("thread=", line.find("thread=") + 1),
              std::string::npos)
        << "interleaved records: " << line;
    EXPECT_EQ(line.substr(line.size() - 4), " end") << line;
  }
  EXPECT_EQ(lines, kThreads * kLinesPerThread);
}

// Swapping the sink while another thread logs must be safe: no write may
// land on a dangling stream. (The TSan-visible contract of set_sink.)
TEST_F(LoggingTest, SinkSwapDuringLoggingIsSafe) {
  Logger::global().set_level(LogLevel::kInfo);
  std::ostringstream other;
  std::thread writer([] {
    for (int i = 0; i < 500; ++i) {
      Logger::global().info("swap", "line");
    }
  });
  for (int i = 0; i < 100; ++i) {
    Logger::global().set_sink(other);
    Logger::global().set_sink(sink_);
  }
  writer.join();

  std::size_t total = 0;
  for (const std::string& dump : {sink_.str(), other.str()}) {
    std::istringstream in(dump);
    for (std::string line; std::getline(in, line);) {
      EXPECT_EQ(line.substr(line.size() - 4), "line") << line;
      ++total;
    }
  }
  EXPECT_EQ(total, 500u);
}

TEST(LogMessage, ConcatenatesStreamables) {
  EXPECT_EQ(log_message("rss=", -62.5, " beam=", 7), "rss=-62.5 beam=7");
  EXPECT_EQ(log_message("solo"), "solo");
}

TEST(LogLevelNames, AllDistinct) {
  EXPECT_EQ(to_string(LogLevel::kDebug), "DEBUG");
  EXPECT_EQ(to_string(LogLevel::kInfo), "INFO");
  EXPECT_EQ(to_string(LogLevel::kWarning), "WARN");
  EXPECT_EQ(to_string(LogLevel::kError), "ERROR");
  EXPECT_EQ(to_string(LogLevel::kOff), "OFF");
}

}  // namespace
}  // namespace st
