#include "common/units.hpp"

#include <gtest/gtest.h>

namespace st {
namespace {

TEST(Units, DbLinearRoundTrip) {
  EXPECT_DOUBLE_EQ(to_db(1.0), 0.0);
  EXPECT_DOUBLE_EQ(to_db(100.0), 20.0);
  EXPECT_NEAR(from_db(3.0), 1.9952623149688795, 1e-12);
  for (const double db : {-30.0, -3.0, 0.0, 3.0, 10.0, 20.0}) {
    EXPECT_NEAR(to_db(from_db(db)), db, 1e-12);
  }
}

TEST(Units, DbmWattRoundTrip) {
  EXPECT_DOUBLE_EQ(watt_to_dbm(1.0), 30.0);
  EXPECT_DOUBLE_EQ(watt_to_dbm(0.001), 0.0);
  EXPECT_NEAR(dbm_to_watt(30.0), 1.0, 1e-12);
  EXPECT_NEAR(dbm_to_watt(watt_to_dbm(0.02)), 0.02, 1e-12);
}

TEST(Units, Wavelength60GHz) {
  // 60 GHz -> ~5 mm, the design point of the whole system.
  EXPECT_NEAR(wavelength(60e9), 4.9965e-3, 1e-6);
  EXPECT_NEAR(wavelength(kDefaultCarrierHz), 4.957e-3, 1e-5);
}

TEST(Units, MphToMps) {
  // The paper's vehicular speed: 20 mph = 8.9408 m/s.
  EXPECT_NEAR(mph_to_mps(20.0), 8.9408, 1e-9);
  EXPECT_DOUBLE_EQ(mph_to_mps(0.0), 0.0);
}

TEST(Units, ThermalNoiseReferenceValues) {
  // kTB at 290 K: -174 dBm/Hz, -114 dBm/MHz, ~-81.5 dBm over 1.76 GHz.
  EXPECT_NEAR(thermal_noise_dbm(1.0), -173.98, 0.01);
  EXPECT_NEAR(thermal_noise_dbm(1e6), -113.98, 0.01);
  EXPECT_NEAR(thermal_noise_dbm(kDefaultBandwidthHz), -81.52, 0.05);
}

TEST(Units, NoiseScalesWithBandwidth) {
  const double n1 = thermal_noise_dbm(1e6);
  const double n2 = thermal_noise_dbm(2e6);
  EXPECT_NEAR(n2 - n1, 3.0103, 1e-3);  // doubling bandwidth = +3 dB
}

}  // namespace
}  // namespace st
