#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace st {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform(-3.5, 2.5);
    EXPECT_GE(u, -3.5);
    EXPECT_LT(u, 2.5);
  }
}

TEST(Rng, UniformMeanAndVariance) {
  Rng rng(42);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kN = 200'000;
  for (int i = 0; i < kN; ++i) {
    const double u = rng.uniform();
    sum += u;
    sum_sq += u * u;
  }
  const double mean = sum / kN;
  const double var = sum_sq / kN - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.005);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

TEST(Rng, UniformIndexCoversAllValuesWithoutBias) {
  Rng rng(9);
  constexpr std::uint64_t kN = 7;
  std::array<int, kN> counts{};
  constexpr int kDraws = 70'000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.uniform_index(kN)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, kDraws / static_cast<int>(kN), 500);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kN = 200'000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.01);
  EXPECT_NEAR(sum_sq / kN, 1.0, 0.02);
}

TEST(Rng, NormalScaledMoments) {
  Rng rng(12);
  double sum = 0.0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) {
    sum += rng.normal(5.0, 2.0);
  }
  EXPECT_NEAR(sum / kN, 5.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  double sum = 0.0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.exponential(3.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kN, 3.0, 0.1);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(14);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliRate) {
  Rng rng(15);
  int hits = 0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) {
    hits += rng.bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, PoissonMeanSmallAndLarge) {
  Rng rng(16);
  for (const double mean : {0.5, 3.0, 100.0}) {
    double sum = 0.0;
    constexpr int kN = 50'000;
    for (int i = 0; i < kN; ++i) {
      sum += rng.poisson(mean);
    }
    EXPECT_NEAR(sum / kN, mean, mean * 0.05 + 0.05);
  }
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(17);
  EXPECT_EQ(rng.poisson(0.0), 0U);
  EXPECT_EQ(rng.poisson(-1.0), 0U);
}

TEST(DeriveSeed, DistinctLabelsGiveDistinctStreams) {
  const std::uint64_t root = 99;
  const std::uint64_t a = derive_seed(root, "channel");
  const std::uint64_t b = derive_seed(root, "mobility");
  const std::uint64_t c = derive_seed(root, "measurement");
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
  EXPECT_NE(a, c);
}

TEST(DeriveSeed, DeterministicInRootAndLabel) {
  EXPECT_EQ(derive_seed(5, "x"), derive_seed(5, "x"));
  EXPECT_NE(derive_seed(5, "x"), derive_seed(6, "x"));
}

TEST(SplitMix64, KnownSequenceIsStable) {
  // Reference values from the published SplitMix64 algorithm, seed 0.
  SplitMix64 mix(0);
  EXPECT_EQ(mix.next(), 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(mix.next(), 0x6E789E6AA1B965F4ULL);
}

}  // namespace
}  // namespace st
