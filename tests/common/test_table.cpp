#include "common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace st {
namespace {

TEST(Table, AsciiAlignsColumns) {
  Table t({"name", "value"});
  t.row().cell("alpha").cell(1);
  t.row().cell("b").cell(22);
  const std::string out = t.ascii();
  // Header, rule, two data rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  // All lines equally wide (aligned).
  std::istringstream iss(out);
  std::string line;
  std::size_t width = 0;
  while (std::getline(iss, line)) {
    if (width == 0) {
      width = line.size();
    }
    EXPECT_EQ(line.size(), width);
  }
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"a", "b"});
  t.row().cell("plain").cell("has,comma");
  t.row().cell("has\"quote").cell("x");
  const std::string csv = t.csv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
  EXPECT_NE(csv.find("plain"), std::string::npos);
}

TEST(Table, DoubleFormattingPrecision) {
  Table t({"x"});
  t.row().cell(3.14159, 2);
  EXPECT_NE(t.ascii().find("3.14"), std::string::npos);
  EXPECT_EQ(t.ascii().find("3.142"), std::string::npos);
}

TEST(Table, CellBeforeRowThrows) {
  Table t({"x"});
  EXPECT_THROW(t.cell("oops"), std::logic_error);
}

TEST(Table, TooManyCellsThrows) {
  Table t({"only"});
  t.row().cell("ok");
  EXPECT_THROW(t.cell("overflow"), std::logic_error);
}

TEST(Table, EmptyHeadersThrow) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, ShortRowRendersBlankCells) {
  Table t({"a", "b"});
  t.row().cell("x");  // second cell missing
  EXPECT_EQ(t.row_count(), 1U);
  EXPECT_NO_THROW((void)t.ascii());
}

TEST(Table, PrintIncludesTitle) {
  Table t({"h"});
  t.row().cell("v");
  std::ostringstream oss;
  t.print(oss, "My Title");
  EXPECT_NE(oss.str().find("My Title"), std::string::npos);
  EXPECT_NE(oss.str().find("v"), std::string::npos);
}

TEST(FormatDouble, Rounds) {
  EXPECT_EQ(format_double(1.2345, 2), "1.23");
  EXPECT_EQ(format_double(1.235, 2), "1.24");  // round half up
  EXPECT_EQ(format_double(-0.5, 0), "-0");     // printf semantics
}

}  // namespace
}  // namespace st
