#include "common/angles.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace st {
namespace {

TEST(Angles, DegRadRoundTrip) {
  EXPECT_DOUBLE_EQ(deg_to_rad(180.0), kPi);
  EXPECT_DOUBLE_EQ(rad_to_deg(kPi), 180.0);
  EXPECT_NEAR(rad_to_deg(deg_to_rad(123.456)), 123.456, 1e-12);
}

TEST(Angles, WrapPiIdentityInsideRange) {
  EXPECT_DOUBLE_EQ(wrap_pi(0.0), 0.0);
  EXPECT_DOUBLE_EQ(wrap_pi(1.0), 1.0);
  EXPECT_DOUBLE_EQ(wrap_pi(-1.0), -1.0);
}

TEST(Angles, WrapPiMapsBoundaryToPositivePi) {
  EXPECT_DOUBLE_EQ(wrap_pi(kPi), kPi);
  EXPECT_DOUBLE_EQ(wrap_pi(-kPi), kPi);
  EXPECT_DOUBLE_EQ(wrap_pi(3.0 * kPi), kPi);
}

TEST(Angles, WrapPiLargeMagnitudes) {
  EXPECT_NEAR(wrap_pi(100.0 * kTwoPi + 0.25), 0.25, 1e-9);
  EXPECT_NEAR(wrap_pi(-100.0 * kTwoPi - 0.25), -0.25, 1e-9);
}

TEST(Angles, WrapTwoPiRange) {
  EXPECT_DOUBLE_EQ(wrap_two_pi(0.0), 0.0);
  EXPECT_NEAR(wrap_two_pi(-0.1), kTwoPi - 0.1, 1e-12);
  EXPECT_NEAR(wrap_two_pi(kTwoPi + 0.1), 0.1, 1e-12);
}

TEST(Angles, AngularDistanceSymmetric) {
  EXPECT_DOUBLE_EQ(angular_distance(0.3, 1.1), angular_distance(1.1, 0.3));
  EXPECT_NEAR(angular_distance(0.3, 1.1), 0.8, 1e-12);
}

TEST(Angles, AngularDistanceAcrossSeam) {
  // 170 deg and -170 deg are 20 deg apart, not 340.
  EXPECT_NEAR(angular_distance(deg_to_rad(170.0), deg_to_rad(-170.0)),
              deg_to_rad(20.0), 1e-12);
}

TEST(Angles, AngularDistanceMaxIsPi) {
  EXPECT_NEAR(angular_distance(0.0, kPi), kPi, 1e-12);
}

TEST(Angles, AngularDifferenceSigned) {
  EXPECT_NEAR(angular_difference(0.0, 0.5), 0.5, 1e-12);
  EXPECT_NEAR(angular_difference(0.5, 0.0), -0.5, 1e-12);
  // Shortest path across the seam is positive (+20 deg).
  EXPECT_NEAR(angular_difference(deg_to_rad(170.0), deg_to_rad(-170.0)),
              deg_to_rad(20.0), 1e-12);
}

TEST(Angles, AngularLerpEndpoints) {
  EXPECT_NEAR(angular_lerp(0.2, 1.4, 0.0), 0.2, 1e-12);
  EXPECT_NEAR(angular_lerp(0.2, 1.4, 1.0), 1.4, 1e-12);
}

TEST(Angles, AngularLerpTakesShortArc) {
  const double a = deg_to_rad(170.0);
  const double b = deg_to_rad(-170.0);
  const double mid = angular_lerp(a, b, 0.5);
  EXPECT_NEAR(angular_distance(mid, deg_to_rad(180.0)), 0.0, 1e-9);
}

/// Property sweep: wrap_pi output is always in (-pi, pi] and preserves the
/// angle modulo 2*pi.
class WrapPiProperty : public ::testing::TestWithParam<double> {};

TEST_P(WrapPiProperty, RangeAndEquivalence) {
  const double theta = GetParam();
  const double w = wrap_pi(theta);
  EXPECT_GT(w, -kPi);
  EXPECT_LE(w, kPi);
  EXPECT_NEAR(std::remainder(theta - w, kTwoPi), 0.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, WrapPiProperty,
                         ::testing::Values(-17.3, -6.4, -kPi, -0.5, 0.0, 0.5,
                                           kPi, 4.0, 9.42, 123.456, -987.65,
                                           1e6, -1e6));

}  // namespace
}  // namespace st
