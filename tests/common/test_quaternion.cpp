#include "common/quaternion.hpp"

#include <gtest/gtest.h>

#include "common/angles.hpp"

namespace st {
namespace {

void expect_vec_near(Vec3 a, Vec3 b, double tol = 1e-12) {
  EXPECT_NEAR(a.x, b.x, tol);
  EXPECT_NEAR(a.y, b.y, tol);
  EXPECT_NEAR(a.z, b.z, tol);
}

TEST(Quaternion, IdentityLeavesVectorsUnchanged) {
  const Vec3 v{1.0, 2.0, 3.0};
  expect_vec_near(Quaternion::identity().rotate(v), v);
}

TEST(Quaternion, YawQuarterTurn) {
  const Quaternion q = Quaternion::from_yaw(kPi / 2.0);
  expect_vec_near(q.rotate({1.0, 0.0, 0.0}), {0.0, 1.0, 0.0});
  expect_vec_near(q.rotate({0.0, 1.0, 0.0}), {-1.0, 0.0, 0.0});
  expect_vec_near(q.rotate({0.0, 0.0, 1.0}), {0.0, 0.0, 1.0});
}

TEST(Quaternion, AxisAngleMatchesYawForZAxis) {
  const Quaternion a = Quaternion::from_axis_angle({0.0, 0.0, 2.0}, 0.7);
  const Quaternion b = Quaternion::from_yaw(0.7);
  expect_vec_near(a.rotate({1.0, 0.0, 0.0}), b.rotate({1.0, 0.0, 0.0}));
}

TEST(Quaternion, RotateInverseUndoesRotate) {
  const Quaternion q = Quaternion::from_axis_angle({1.0, 2.0, 3.0}, 1.234);
  const Vec3 v{0.3, -0.7, 1.1};
  expect_vec_near(q.rotate_inverse(q.rotate(v)), v, 1e-12);
  expect_vec_near(q.rotate(q.rotate_inverse(v)), v, 1e-12);
}

TEST(Quaternion, CompositionOrder) {
  // rotate(a*b, v) == rotate(a, rotate(b, v)).
  const Quaternion a = Quaternion::from_yaw(0.4);
  const Quaternion b = Quaternion::from_axis_angle({1.0, 0.0, 0.0}, 0.9);
  const Vec3 v{0.2, 0.5, -0.3};
  expect_vec_near((a * b).rotate(v), a.rotate(b.rotate(v)), 1e-12);
}

TEST(Quaternion, RotationPreservesNormAndAngles) {
  const Quaternion q = Quaternion::from_axis_angle({0.5, -1.0, 2.0}, 2.1);
  const Vec3 u{1.0, 2.0, 3.0};
  const Vec3 w{-2.0, 0.5, 1.0};
  EXPECT_NEAR(q.rotate(u).norm(), u.norm(), 1e-12);
  EXPECT_NEAR(q.rotate(u).dot(q.rotate(w)), u.dot(w), 1e-12);
}

TEST(Quaternion, YawAccessorRecoverAngle) {
  for (const double yaw : {-2.5, -1.0, 0.0, 0.3, 1.7, 3.0}) {
    EXPECT_NEAR(Quaternion::from_yaw(yaw).yaw(), wrap_pi(yaw), 1e-12);
  }
}

TEST(Quaternion, NormalizedHasUnitNorm) {
  const Quaternion q{2.0, 1.0, -1.0, 0.5};
  EXPECT_NEAR(q.normalized().norm(), 1.0, 1e-12);
}

TEST(Quaternion, ZeroQuaternionNormalizesToIdentity) {
  const Quaternion q{0.0, 0.0, 0.0, 0.0};
  const Quaternion n = q.normalized();
  EXPECT_DOUBLE_EQ(n.w, 1.0);
  EXPECT_DOUBLE_EQ(n.x, 0.0);
}

/// Property: composing N incremental yaws equals one total yaw.
class YawComposition : public ::testing::TestWithParam<int> {};

TEST_P(YawComposition, IncrementalEqualsTotal) {
  const int steps = GetParam();
  const double total = 1.9;
  Quaternion q = Quaternion::identity();
  for (int i = 0; i < steps; ++i) {
    q = Quaternion::from_yaw(total / steps) * q;
  }
  const Vec3 v{1.0, 0.0, 0.0};
  expect_vec_near(q.rotate(v), Quaternion::from_yaw(total).rotate(v), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, YawComposition, ::testing::Values(2, 7, 36, 360));

}  // namespace
}  // namespace st
