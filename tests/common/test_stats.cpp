#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace st {
namespace {

TEST(RunningStats, EmptyIsSafe) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0U);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(x);
  }
  EXPECT_EQ(s.count(), 8U);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleSampleVarianceZero) {
  RunningStats s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
}

TEST(RunningStats, MergeMatchesCombinedStream) {
  RunningStats left;
  RunningStats right;
  RunningStats all;
  for (int i = 0; i < 50; ++i) {
    const double x = 0.37 * i - 3.0;
    (i % 2 == 0 ? left : right).add(x);
    all.add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats s;
  s.add(1.0);
  s.add(2.0);
  RunningStats empty;
  s.merge(empty);
  EXPECT_EQ(s.count(), 2U);
  empty.merge(s);
  EXPECT_EQ(empty.count(), 2U);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(SampleSet, PercentilesExact) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) {
    s.add(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100.0), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-12);
  EXPECT_NEAR(s.percentile(95.0), 95.05, 1e-9);
}

TEST(SampleSet, PercentileInterpolates) {
  SampleSet s;
  s.add(10.0);
  s.add(20.0);
  EXPECT_DOUBLE_EQ(s.percentile(50.0), 15.0);
  EXPECT_DOUBLE_EQ(s.percentile(25.0), 12.5);
}

TEST(SampleSet, PercentileOnEmptyThrows) {
  SampleSet s;
  EXPECT_THROW((void)s.percentile(50.0), std::logic_error);
}

TEST(SampleSet, PercentileClampsOutOfRangeP) {
  SampleSet s;
  s.add(1.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.percentile(-5.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(150.0), 2.0);
}

TEST(SampleSet, AddAfterPercentileInvalidatesCache) {
  SampleSet s;
  s.add(1.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
  s.add(100.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
}

TEST(SampleSet, AddAllAndSummary) {
  SampleSet s;
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  s.add_all(xs);
  EXPECT_EQ(s.count(), 4U);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.stddev(), 1.2909944487358056, 1e-12);
}

TEST(SuccessRate, RateAndCounts) {
  SuccessRate r;
  r.record(true);
  r.record(true);
  r.record(false);
  r.record(true);
  EXPECT_EQ(r.trials(), 4U);
  EXPECT_EQ(r.successes(), 3U);
  EXPECT_DOUBLE_EQ(r.rate(), 0.75);
}

TEST(SuccessRate, WilsonIntervalContainsRate) {
  SuccessRate r;
  for (int i = 0; i < 80; ++i) {
    r.record(i % 4 != 0);  // 75%
  }
  const auto [lo, hi] = r.wilson95();
  EXPECT_LT(lo, 0.75);
  EXPECT_GT(hi, 0.75);
  EXPECT_GE(lo, 0.0);
  EXPECT_LE(hi, 1.0);
}

TEST(SuccessRate, WilsonHandlesExtremes) {
  SuccessRate all;
  for (int i = 0; i < 20; ++i) {
    all.record(true);
  }
  const auto [lo, hi] = all.wilson95();
  EXPECT_LT(lo, 1.0);  // never certain from finite trials
  EXPECT_DOUBLE_EQ(hi, 1.0);

  SuccessRate none;
  EXPECT_EQ(none.wilson95().first, 0.0);
  EXPECT_EQ(none.wilson95().second, 1.0);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(3.0);   // bin 1
  h.add(9.99);  // bin 4
  h.add(-5.0);  // clamps to bin 0
  h.add(42.0);  // clamps to bin 4
  EXPECT_EQ(h.total(), 5U);
  EXPECT_EQ(h.count_in_bin(0), 2U);
  EXPECT_EQ(h.count_in_bin(1), 1U);
  EXPECT_EQ(h.count_in_bin(4), 2U);
  EXPECT_DOUBLE_EQ(h.bin_width(), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lower(2), 4.0);
}

TEST(Histogram, InvalidConstructionThrows) {
  EXPECT_THROW(Histogram(0.0, 10.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(5.0, 5.0, 3), std::invalid_argument);
  EXPECT_THROW(Histogram(9.0, 5.0, 3), std::invalid_argument);
}

TEST(LogLinearHistogram, EmptyReturnsZeros) {
  LogLinearHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0U);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.p99(), 0.0);
}

TEST(LogLinearHistogram, CountSumMeanMinMaxAreExact) {
  LogLinearHistogram h;
  for (const double x : {2.0, 4.0, 4.0, 5.0, 9.0}) {
    h.add(x);
  }
  EXPECT_EQ(h.count(), 5U);
  EXPECT_DOUBLE_EQ(h.sum(), 24.0);
  EXPECT_DOUBLE_EQ(h.mean(), 4.8);
  EXPECT_DOUBLE_EQ(h.min(), 2.0);
  EXPECT_DOUBLE_EQ(h.max(), 9.0);
}

TEST(LogLinearHistogram, QuantilesApproximateWithinBinResolution) {
  LogLinearHistogram h;  // 16 sub-buckets/octave: <= ~4.5% relative error
  for (int i = 1; i <= 1000; ++i) {
    h.add(static_cast<double>(i));
  }
  EXPECT_NEAR(h.p50(), 500.0, 500.0 * 0.05);
  EXPECT_NEAR(h.p95(), 950.0, 950.0 * 0.05);
  EXPECT_NEAR(h.p99(), 990.0, 990.0 * 0.05);
  EXPECT_LE(h.quantile(0.0), h.p50());
  EXPECT_LE(h.p50(), h.p95());
  EXPECT_LE(h.p95(), h.p99());
}

TEST(LogLinearHistogram, QuantilesClampToObservedRange) {
  LogLinearHistogram h;
  h.add(7.3);
  // A one-sample histogram must report that sample for every quantile —
  // the bin midpoint is clamped to the exact observed [min, max].
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 7.3);
  EXPECT_DOUBLE_EQ(h.p50(), 7.3);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 7.3);
}

TEST(LogLinearHistogram, ZeroAndNegativeSamplesLandInZeroBin) {
  LogLinearHistogram h;
  h.add(0.0);
  h.add(-5.0);
  h.add(10.0);
  EXPECT_EQ(h.count(), 3U);
  EXPECT_DOUBLE_EQ(h.min(), -5.0);
  EXPECT_DOUBLE_EQ(h.max(), 10.0);
  // Two of three samples are in the zero bin, so the median is <= 0.
  EXPECT_LE(h.p50(), 0.0);
}

TEST(LogLinearHistogram, MergeMatchesCombinedStream) {
  LogLinearHistogram left;
  LogLinearHistogram right;
  LogLinearHistogram all;
  for (int i = 1; i <= 200; ++i) {
    const double x = 0.5 * i;
    (i % 2 == 0 ? left : right).add(x);
    all.add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_DOUBLE_EQ(left.sum(), all.sum());
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
  EXPECT_DOUBLE_EQ(left.p50(), all.p50());
  EXPECT_DOUBLE_EQ(left.p95(), all.p95());
}

TEST(LogLinearHistogram, MergeWithEmptyIsIdentity) {
  LogLinearHistogram h;
  h.add(3.0);
  LogLinearHistogram empty;
  h.merge(empty);
  EXPECT_EQ(h.count(), 1U);
  empty.merge(h);
  EXPECT_EQ(empty.count(), 1U);
  EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
}

TEST(Histogram, AsciiRendersOneLinePerBin) {
  Histogram h(0.0, 3.0, 3);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  const std::string art = h.ascii(10);
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 3);
  EXPECT_NE(art.find('#'), std::string::npos);
}

}  // namespace
}  // namespace st
