// The wire-protocol JSON core: strict parsing of hostile input, exact
// 64-bit integer round-trips, and deterministic serialisation.
#include "common/json.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>

namespace {

using st::json::kMaxParseDepth;
using st::json::parse;
using st::json::ParseError;
using st::json::Value;

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_TRUE(parse("true").as_bool());
  EXPECT_FALSE(parse("false").as_bool());
  EXPECT_DOUBLE_EQ(parse("-2.5e3").as_double(), -2500.0);
  EXPECT_EQ(parse("\"hi\"").as_string(), "hi");
}

TEST(Json, PreservesExact64BitIntegers) {
  // 2^63 + 3 is not representable as a double; the parser must keep the
  // exact literal so fleet seeds survive the wire.
  const std::uint64_t big = 9223372036854775811ULL;
  EXPECT_EQ(parse("9223372036854775811").as_u64(), big);
  EXPECT_EQ(parse(Value::unsigned_integer(big).dump()).as_u64(), big);
  EXPECT_EQ(Value::unsigned_integer(big).dump(), "9223372036854775811");
}

TEST(Json, AsU64RejectsNonIntegerNumbers) {
  EXPECT_THROW((void)parse("1.5").as_u64(), ParseError);
  EXPECT_THROW((void)parse("-3").as_u64(), ParseError);
  EXPECT_THROW((void)parse("\"7\"").as_u64(), ParseError);
  EXPECT_EQ(parse("7").as_u64(), 7U);
}

TEST(Json, ParsesContainers) {
  const Value v = parse(R"({"a": [1, 2, {"b": true}], "c": "x"})");
  ASSERT_TRUE(v.is_object());
  const Value* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->items().size(), 3U);
  EXPECT_EQ(a->items()[0].as_u64(), 1U);
  EXPECT_TRUE(a->items()[2].find("b")->as_bool());
  EXPECT_EQ(v.find("c")->as_string(), "x");
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Json, StringEscapesRoundTrip) {
  const std::string text = "quote\" slash\\ tab\t nl\n unicodeé";
  const Value v = Value::string(text);
  EXPECT_EQ(parse(v.dump()).as_string(), text);
}

TEST(Json, ParsesUnicodeEscapes) {
  EXPECT_EQ(parse(R"("Aé")").as_string(), "Aé");
  // Surrogate pair: U+1F600.
  EXPECT_EQ(parse(R"("😀")").as_string(), "\U0001F600");
  // Unpaired surrogate is malformed.
  EXPECT_THROW((void)parse(R"("\ud83d")"), ParseError);
}

TEST(Json, RejectsMalformedDocuments) {
  const char* hostile[] = {
      "",           "{",         "[1, 2",       "{\"a\": }",
      "{\"a\" 1}",  "[1,]",      "tru",         "01",
      "1.",         "+1",        "\"unclosed",  "{\"a\": 1} trailing",
      "[1] [2]",    "'single'",  "{a: 1}",      "\"bad\x01ctrl\"",
      "nan",        "inf",       "--1",         "{\"a\": 1,}",
  };
  for (const char* doc : hostile) {
    EXPECT_THROW((void)parse(doc), ParseError) << "accepted: " << doc;
  }
}

TEST(Json, RejectsExcessiveNesting) {
  std::string deep;
  for (std::size_t i = 0; i < kMaxParseDepth + 1; ++i) {
    deep += '[';
  }
  deep += "1";
  for (std::size_t i = 0; i < kMaxParseDepth + 1; ++i) {
    deep += ']';
  }
  EXPECT_THROW((void)parse(deep), ParseError);

  // One level inside the limit parses fine.
  std::string ok;
  for (std::size_t i = 0; i < kMaxParseDepth - 1; ++i) {
    ok += '[';
  }
  ok += "1";
  for (std::size_t i = 0; i < kMaxParseDepth - 1; ++i) {
    ok += ']';
  }
  EXPECT_NO_THROW((void)parse(ok));
}

TEST(Json, ObjectSetIsLastWins) {
  Value v = Value::object();
  v.set("k", Value::unsigned_integer(1));
  v.set("k", Value::unsigned_integer(2));
  EXPECT_EQ(v.members().size(), 1U);
  EXPECT_EQ(v.find("k")->as_u64(), 2U);
}

TEST(Json, ObjectKeepsInsertionOrder) {
  Value v = Value::object();
  v.set("z", Value::unsigned_integer(1));
  v.set("a", Value::unsigned_integer(2));
  EXPECT_EQ(v.dump(), R"({"z":1,"a":2})");
}

TEST(Json, RawSplicesPrerenderedText) {
  Value v = Value::object();
  v.set("report", Value::raw(R"({"inner": [1, 2]})"));
  EXPECT_EQ(v.dump(), R"({"report":{"inner": [1, 2]}})");
  // And the spliced result is itself parseable.
  EXPECT_EQ(parse(v.dump()).find("report")->find("inner")->items().size(), 2U);
}

TEST(Json, NonFiniteNumbersDumpAsNull) {
  EXPECT_EQ(Value::number(std::numeric_limits<double>::quiet_NaN()).dump(),
            "null");
  EXPECT_EQ(Value::number(std::numeric_limits<double>::infinity()).dump(),
            "null");
}

TEST(Json, LenientAccessorsFallBack) {
  const Value v = parse(R"({"s": "x"})");
  EXPECT_EQ(v.find("s")->u64_or(9), 9U);
  EXPECT_EQ(v.find("s")->string_or("y"), "x");
  EXPECT_TRUE(v.find("s")->bool_or(true));
  EXPECT_DOUBLE_EQ(v.find("s")->double_or(1.5), 1.5);
}

TEST(Json, StrictAccessorsThrowOnKindMismatch) {
  const Value v = parse("[1]");
  EXPECT_THROW((void)v.as_bool(), ParseError);
  EXPECT_THROW((void)v.as_double(), ParseError);
  EXPECT_THROW((void)v.as_string(), ParseError);
  EXPECT_THROW((void)v.members(), ParseError);
  EXPECT_NO_THROW((void)v.items());
}

TEST(Json, DumpParsesBackIdentically) {
  const std::string doc =
      R"({"a":[1,2.5,"s",null,true,-7],"b":{"c":18446744073709551615}})";
  EXPECT_EQ(parse(doc).dump(), doc);
}

}  // namespace
