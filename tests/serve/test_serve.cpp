// The scenario service end to end: job lifecycle, overload shedding,
// cooperative cancellation, graceful drain, server health metrics, and
// hostile wire-protocol input — plus the acceptance pin that a served
// job's report is bit-identical to calling run_fleet directly.
//
// Lifecycle/robustness tests run against Server::handle() without a
// socket (an unstarted Server has no workers, so queued jobs hold
// still); the loopback tests exercise the full daemon over a real
// AF_UNIX socket, including raw malformed bytes.
#include "serve/server.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>

#include "common/json.hpp"
#include "core/spec_json.hpp"
#include "fleet/engine.hpp"
#include "serve/client.hpp"
#include "serve/job.hpp"
#include "serve/protocol.hpp"

namespace {

using st::json::parse;
using st::json::Value;
using st::serve::Client;
using st::serve::JobState;
using st::serve::Server;
using st::serve::ServerConfig;

// ---- helpers --------------------------------------------------------------

std::string test_socket_path(const char* tag) {
  return "/tmp/st-serve-test-" + std::to_string(::getpid()) + "-" + tag +
         ".sock";
}

Value submit_request(const char* job_text) {
  Value req = Value::object();
  req.set("type", Value::string("submit"));
  req.set("job", parse(job_text));
  return req;
}

Value typed_id(const char* type, std::uint64_t id) {
  Value req = Value::object();
  req.set("type", Value::string(type));
  req.set("id", Value::unsigned_integer(id));
  return req;
}

bool ok(const Value& response) {
  const Value* v = response.find("ok");
  return v != nullptr && v->as_bool();
}

std::string error_code(const Value& response) {
  const Value* err = response.find("error");
  if (err == nullptr || err->find("code") == nullptr) {
    return "";
  }
  return err->find("code")->as_string();
}

std::string state_of(const Value& response) {
  const Value* v = response.find("state");
  return v == nullptr ? "" : v->as_string();
}

/// Deep-copy a document minus the wall-clock fields — the only
/// legitimately non-deterministic report content.
Value scrub_wall_clock(const Value& v) {
  if (v.is_object()) {
    Value out = Value::object();
    for (const Value::Member& m : v.members()) {
      if (m.first == "wall_seconds" || m.first == "ues_per_second" ||
          m.first == "wall_per_sim_second") {
        continue;
      }
      out.set(m.first, scrub_wall_clock(m.second));
    }
    return out;
  }
  if (v.is_array()) {
    Value out = Value::array();
    for (const Value& e : v.items()) {
      out.push_back(scrub_wall_clock(e));
    }
    return out;
  }
  return v;
}

// ---- transport-free lifecycle tests (unstarted server: no workers) --------

TEST(ServeHandle, PingAndUnknownType) {
  Server server(ServerConfig{});
  EXPECT_TRUE(ok(server.handle(parse(R"({"type": "ping"})"))));
  const Value bad = server.handle(parse(R"({"type": "warp"})"));
  EXPECT_FALSE(ok(bad));
  EXPECT_EQ(error_code(bad), "unknown_type");
}

TEST(ServeHandle, MalformedRequestsAreTypedErrors) {
  Server server(ServerConfig{});
  EXPECT_EQ(error_code(server.handle(parse("[1,2]"))), "bad_request");
  EXPECT_EQ(error_code(server.handle(parse("{}"))), "bad_request");
  EXPECT_EQ(error_code(server.handle(parse(R"({"type": 7})"))), "bad_request");
  EXPECT_EQ(error_code(server.handle(parse(R"({"type": "status"})"))),
            "bad_request");
  EXPECT_EQ(
      error_code(server.handle(parse(R"({"type": "status", "id": "x"})"))),
      "bad_request");
  EXPECT_EQ(error_code(server.handle(parse(R"({"type": "submit"})"))),
            "bad_request");
  EXPECT_EQ(error_code(server.handle(
                submit_request(R"({"preset": "paper_walk", "junk": 1})"))),
            "bad_request");
  EXPECT_EQ(error_code(server.handle(typed_id("status", 404))), "unknown_job");
}

TEST(ServeHandle, SubmitQueuesAndReportsStatus) {
  Server server(ServerConfig{});
  const Value submitted =
      server.handle(submit_request(R"({"preset": "paper_walk", "seed": 5})"));
  ASSERT_TRUE(ok(submitted));
  const std::uint64_t id = submitted.find("id")->as_u64();
  EXPECT_EQ(state_of(submitted), "queued");

  const Value status = server.handle(typed_id("status", id));
  ASSERT_TRUE(ok(status));
  EXPECT_EQ(state_of(status), "queued");
  EXPECT_EQ(status.find("ues_total")->as_u64(), 1U);
  EXPECT_EQ(status.find("ues_completed")->as_u64(), 0U);

  const Value result = server.handle(typed_id("result", id));
  EXPECT_FALSE(ok(result));
  EXPECT_EQ(error_code(result), "not_done");
}

TEST(ServeHandle, BoundedQueueShedsWithTypedResponse) {
  ServerConfig config;
  config.queue_capacity = 2;
  Server server(config);
  const char* job = R"({"preset": "paper_walk"})";
  EXPECT_TRUE(ok(server.handle(submit_request(job))));
  EXPECT_TRUE(ok(server.handle(submit_request(job))));

  const Value shed = server.handle(submit_request(job));
  EXPECT_FALSE(ok(shed));
  EXPECT_EQ(error_code(shed), "shed");
  ASSERT_NE(shed.find("id"), nullptr);
  const std::uint64_t shed_id = shed.find("id")->as_u64();

  // The shed job is a terminal record, not a ghost.
  EXPECT_EQ(state_of(server.handle(typed_id("status", shed_id))), "shed");
  EXPECT_EQ(error_code(server.handle(typed_id("result", shed_id))), "shed");
  EXPECT_EQ(error_code(server.handle(typed_id("cancel", shed_id))),
            "already_finished");

  const Value stats = server.handle(parse(R"({"type": "stats"})"));
  const Value* jobs = stats.find("stats")->find("jobs");
  EXPECT_EQ(jobs->find("submitted")->as_u64(), 3U);
  EXPECT_EQ(jobs->find("shed")->as_u64(), 1U);
  EXPECT_EQ(stats.find("stats")->find("queue_depth")->as_u64(), 2U);
}

TEST(ServeHandle, CancelQueuedJobAndDoubleCancel) {
  Server server(ServerConfig{});
  const Value submitted =
      server.handle(submit_request(R"({"preset": "paper_walk"})"));
  const std::uint64_t id = submitted.find("id")->as_u64();

  const Value first = server.handle(typed_id("cancel", id));
  ASSERT_TRUE(ok(first));
  EXPECT_EQ(state_of(first), "cancelled");

  // Double-cancel is a typed error, not a crash or a second transition.
  const Value second = server.handle(typed_id("cancel", id));
  EXPECT_FALSE(ok(second));
  EXPECT_EQ(error_code(second), "already_cancelled");

  EXPECT_EQ(error_code(server.handle(typed_id("result", id))), "cancelled");
}

TEST(ServeHandle, DrainRejectsNewSubmissions) {
  Server server(ServerConfig{});
  EXPECT_TRUE(ok(server.handle(parse(R"({"type": "drain"})"))));
  const Value rejected =
      server.handle(submit_request(R"({"preset": "paper_walk"})"));
  EXPECT_FALSE(ok(rejected));
  EXPECT_EQ(error_code(rejected), "draining");
  EXPECT_TRUE(server.drained());
}

TEST(ServeHandle, EventsAreCursorable) {
  Server server(ServerConfig{});
  const Value submitted =
      server.handle(submit_request(R"({"preset": "paper_walk"})"));
  const std::uint64_t id = submitted.find("id")->as_u64();
  (void)server.handle(typed_id("cancel", id));

  const Value all = server.handle(typed_id("events", id));
  ASSERT_TRUE(ok(all));
  const auto& events = all.find("events")->items();
  ASSERT_EQ(events.size(), 2U);
  EXPECT_EQ(events[0].find("event")->as_string(), "queued");
  EXPECT_EQ(events[1].find("event")->as_string(), "cancelled");

  // Resume from the cursor: nothing new.
  Value after = typed_id("events", id);
  after.set("after", *all.find("next"));
  EXPECT_TRUE(server.handle(after).find("events")->items().empty());
}

TEST(ServeJobStateMachine, TableMatchesLifecycle) {
  using st::serve::job_state_terminal;
  using st::serve::job_transition_allowed;
  EXPECT_TRUE(job_transition_allowed(JobState::kQueued, JobState::kRunning));
  EXPECT_TRUE(job_transition_allowed(JobState::kQueued, JobState::kShed));
  EXPECT_TRUE(job_transition_allowed(JobState::kRunning, JobState::kDone));
  EXPECT_TRUE(
      job_transition_allowed(JobState::kRunning, JobState::kCancelled));
  EXPECT_TRUE(job_transition_allowed(JobState::kRunning, JobState::kFailed));
  // Resurrection and double-claim edges are illegal.
  EXPECT_FALSE(job_transition_allowed(JobState::kDone, JobState::kRunning));
  EXPECT_FALSE(job_transition_allowed(JobState::kShed, JobState::kQueued));
  EXPECT_FALSE(job_transition_allowed(JobState::kQueued, JobState::kDone));
  EXPECT_FALSE(job_transition_allowed(JobState::kRunning, JobState::kRunning));
  EXPECT_FALSE(
      job_transition_allowed(JobState::kCancelled, JobState::kCancelled));
  EXPECT_TRUE(job_state_terminal(JobState::kDone));
  EXPECT_TRUE(job_state_terminal(JobState::kShed));
  EXPECT_FALSE(job_state_terminal(JobState::kRunning));
}

// ---- loopback tests (real daemon over a real socket) ----------------------

class ServeLoopback : public ::testing::Test {
 protected:
  void start(const char* tag, std::size_t workers = 2,
             std::size_t queue_capacity = 8, unsigned fleet_threads = 2) {
    config_.socket_path = test_socket_path(tag);
    config_.workers = workers;
    config_.queue_capacity = queue_capacity;
    config_.fleet_threads = fleet_threads;
    server_ = std::make_unique<Server>(config_);
    server_->start();
    ASSERT_TRUE(client_.connect(config_.socket_path));
  }

  void TearDown() override {
    client_.close();
    if (server_ != nullptr) {
      server_->stop();
    }
  }

  ServerConfig config_;
  std::unique_ptr<Server> server_;
  Client client_;
};

TEST_F(ServeLoopback, ServedReportIsBitIdenticalToDirectRun) {
  start("ident");
  const char* job_text = R"({
    "preset": "paper_walk",
    "seed": 42,
    "overrides": {"duration_ms": 1500, "n_ues": 3}
  })";

  const Value submitted = client_.submit(parse(job_text));
  ASSERT_TRUE(ok(submitted)) << submitted.dump();
  const std::uint64_t id = submitted.find("id")->as_u64();
  const auto final_status = client_.wait(id);
  ASSERT_TRUE(final_status.has_value());
  ASSERT_EQ(state_of(*final_status), "done") << final_status->dump();

  const Value served = client_.result(id);
  ASSERT_TRUE(ok(served)) << served.dump();

  // Same spec, same seed, same thread count, run directly.
  const auto spec = st::core::spec_from_job_json(parse(job_text));
  const auto direct = st::fleet::run_fleet(spec, config_.fleet_threads);
  const std::string direct_json =
      st::fleet::build_fleet_report(spec, direct).to_json();

  EXPECT_EQ(scrub_wall_clock(*served.find("report")).dump(),
            scrub_wall_clock(parse(direct_json)).dump());
}

TEST_F(ServeLoopback, ProgressEventsArriveInOrder) {
  start("events");
  const Value submitted = client_.submit(parse(
      R"({"preset": "paper_walk", "overrides": {"duration_ms": 500, "n_ues": 2}})"));
  ASSERT_TRUE(ok(submitted));
  const std::uint64_t id = submitted.find("id")->as_u64();
  ASSERT_TRUE(client_.wait(id).has_value());

  const Value events = client_.events(id);
  ASSERT_TRUE(ok(events));
  const auto& items = events.find("events")->items();
  // queued, running, one ue_complete per UE, done — in seq order.
  ASSERT_EQ(items.size(), 5U);
  EXPECT_EQ(items.front().find("event")->as_string(), "queued");
  EXPECT_EQ(items[1].find("event")->as_string(), "running");
  EXPECT_EQ(items.back().find("event")->as_string(), "done");
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(items[i].find("seq")->as_u64(), i);
  }
  const Value status = client_.status(id);
  EXPECT_EQ(status.find("ues_completed")->as_u64(), 2U);
}

TEST_F(ServeLoopback, MidRunCancellationStopsTheWorker) {
  start("cancel", /*workers=*/1, /*queue_capacity=*/8, /*fleet_threads=*/1);
  // A job long enough (10 min of sim time) that it cannot finish before
  // the cancel lands.
  const Value submitted = client_.submit(parse(
      R"({"preset": "paper_walk", "overrides": {"duration_ms": 600000}})"));
  ASSERT_TRUE(ok(submitted));
  const std::uint64_t id = submitted.find("id")->as_u64();

  // Wait until the worker has actually claimed it.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (state_of(client_.status(id)) != "running") {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  const Value cancelled = client_.cancel(id);
  ASSERT_TRUE(ok(cancelled)) << cancelled.dump();
  // Cooperative cancellation lands within one scenario step — far
  // sooner than the minutes the job would otherwise take.
  const auto final_status = client_.wait(id, /*timeout_ms=*/10000);
  ASSERT_TRUE(final_status.has_value());
  EXPECT_EQ(state_of(*final_status), "cancelled");
  EXPECT_EQ(error_code(client_.result(id)), "cancelled");
  EXPECT_EQ(error_code(client_.cancel(id)), "already_cancelled");
}

TEST_F(ServeLoopback, GracefulDrainFinishesRunningJobs) {
  start("drain", /*workers=*/1);
  const Value submitted = client_.submit(parse(
      R"({"preset": "paper_walk", "overrides": {"duration_ms": 2000}})"));
  ASSERT_TRUE(ok(submitted));
  const std::uint64_t id = submitted.find("id")->as_u64();

  ASSERT_TRUE(ok(client_.drain()));
  // New work is rejected...
  const Value rejected =
      client_.submit(parse(R"({"preset": "paper_walk"})"));
  EXPECT_EQ(error_code(rejected), "draining");

  // ...but the admitted job still runs to completion.
  const auto final_status = client_.wait(id);
  ASSERT_TRUE(final_status.has_value());
  EXPECT_EQ(state_of(*final_status), "done");
  EXPECT_TRUE(ok(client_.result(id)));
  server_->wait_drained();
  EXPECT_TRUE(server_->drained());
}

TEST_F(ServeLoopback, StatsReportServerHealth) {
  start("stats");
  const Value submitted = client_.submit(parse(
      R"({"preset": "paper_walk", "overrides": {"duration_ms": 500}})"));
  ASSERT_TRUE(ok(submitted));
  ASSERT_TRUE(client_.wait(submitted.find("id")->as_u64()).has_value());

  const Value stats = client_.stats();
  ASSERT_TRUE(ok(stats)) << stats.dump();
  const Value* s = stats.find("stats");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->find("jobs")->find("submitted")->as_u64(), 1U);
  EXPECT_EQ(s->find("jobs")->find("done")->as_u64(), 1U);
  EXPECT_EQ(s->find("queue_depth")->as_u64(), 0U);
  // Latency histograms recorded the run.
  const Value* latency = s->find("latency");
  ASSERT_NE(latency->find("queue_wait_ms"), nullptr);
  EXPECT_EQ(latency->find("run_ms")->find("count")->as_u64(), 1U);
}

// ---- hostile wire input over the real socket ------------------------------

TEST_F(ServeLoopback, MalformedJsonGetsTypedErrorAndConnectionSurvives) {
  start("badjson");
  const Value response = client_.request_raw(R"({"type": "ping)");
  EXPECT_FALSE(ok(response));
  EXPECT_EQ(error_code(response), "bad_json");
  // Frame boundary was intact: the same connection still works.
  EXPECT_TRUE(ok(client_.ping()));
}

TEST_F(ServeLoopback, OversizeFrameIsRejectedBeforeAllocation) {
  start("oversize");
  // A header promising 512 MiB — far beyond the 1 MiB request cap. The
  // server must answer without ever reading (or allocating) a payload.
  const unsigned char header[4] = {0x00, 0x00, 0x00, 0x20};
  ASSERT_EQ(::write(client_.fd(), header, sizeof(header)),
            static_cast<ssize_t>(sizeof(header)));
  auto frame = st::serve::read_frame(
      client_.fd(), st::serve::kMaxResponseFrameBytes, nullptr);
  ASSERT_EQ(frame.status, st::serve::FrameStatus::kOk);
  const Value response = parse(frame.payload);
  EXPECT_EQ(error_code(response), "frame_too_large");
}

TEST_F(ServeLoopback, TruncatedFrameGetsTypedErrorNotAHang) {
  start("truncated");
  // Header promises 64 bytes; send 10 and close the write side.
  const unsigned char header[4] = {64, 0, 0, 0};
  ASSERT_EQ(::write(client_.fd(), header, sizeof(header)),
            static_cast<ssize_t>(sizeof(header)));
  ASSERT_EQ(::write(client_.fd(), "0123456789", 10), 10);
  ASSERT_EQ(::shutdown(client_.fd(), SHUT_WR), 0);
  auto frame = st::serve::read_frame(
      client_.fd(), st::serve::kMaxResponseFrameBytes, nullptr);
  ASSERT_EQ(frame.status, st::serve::FrameStatus::kOk);
  EXPECT_EQ(error_code(parse(frame.payload)), "bad_frame");
}

TEST_F(ServeLoopback, UnknownTypeOverTheWire) {
  start("unknown");
  const Value response = client_.request_raw(R"({"type": "selfdestruct"})");
  EXPECT_FALSE(ok(response));
  EXPECT_EQ(error_code(response), "unknown_type");
}

TEST_F(ServeLoopback, SubmissionErrorsAreTyped) {
  start("badsubmit");
  // Unknown override key.
  Value bad = client_.submit(
      parse(R"({"preset": "paper_walk", "overrides": {"durationms": 1}})"));
  EXPECT_EQ(error_code(bad), "bad_request");
  // Spec the library itself rejects.
  bad = client_.submit(
      parse(R"({"preset": "paper_walk", "overrides": {"cells": 0}})"));
  EXPECT_EQ(error_code(bad), "bad_request");
  // Unknown preset.
  bad = client_.submit(parse(R"({"preset": "warp_drive"})"));
  EXPECT_EQ(error_code(bad), "bad_request");
}

}  // namespace
