// The streaming half of the scenario service: subscribe validation, the
// versioned push-frame schema, stats snapshot/delta framing, hostile
// subscribers (slow readers with verified drop accounting, mid-stream
// disconnects, subscribe-then-cancel), concurrent subscribers, and the
// replay pin that every streamed job event is also reachable through the
// seq-cursor poll path — the stream is a latency optimisation, never the
// only copy of the truth.
//
// Runs in the test_serve binary, so the TSan CI leg exercises the full
// publisher/subscriber thread mesh under the race detector.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace {

using st::json::parse;
using st::json::Value;
using st::serve::Client;
using st::serve::Server;
using st::serve::ServerConfig;

bool ok(const Value& response) {
  const Value* v = response.find("ok");
  return v != nullptr && v->as_bool();
}

std::string error_code(const Value& response) {
  const Value* err = response.find("error");
  if (err == nullptr || err->find("code") == nullptr) {
    return "";
  }
  return err->find("code")->as_string();
}

std::uint64_t u64_field(const Value& v, const char* key) {
  const Value* f = v.find(key);
  return f == nullptr ? 0 : f->u64_or(0);
}

Value subscribe_request(const char* body) { return parse(body); }

// ---- subscribe validation (transport-free handle()) -----------------------

TEST(ServeSubscribe, AckEchoesResolvedParameters) {
  Server server(ServerConfig{});
  const Value ack = server.handle(subscribe_request(
      R"({"type": "subscribe", "filter": "stats", "snapshot_period_ms": 500,
          "delta": false, "queue": 8})"));
  ASSERT_TRUE(ok(ack)) << ack.dump();
  EXPECT_TRUE(ack.find("subscribed")->as_bool());
  EXPECT_EQ(ack.find("filter")->as_string(), "stats");
  EXPECT_EQ(u64_field(ack, "snapshot_period_ms"), 500U);
  EXPECT_FALSE(ack.find("delta")->as_bool());
  EXPECT_EQ(u64_field(ack, "queue"), 8U);
  EXPECT_EQ(u64_field(ack, "frame_version"), 1U);
}

TEST(ServeSubscribe, DefaultsAndClamping) {
  ServerConfig config;
  config.telemetry_queue = 128;
  Server server(config);

  // Bare subscribe: filter all, server-default queue.
  const Value bare = server.handle(subscribe_request(R"({"type": "subscribe"})"));
  ASSERT_TRUE(ok(bare));
  EXPECT_EQ(bare.find("filter")->as_string(), "all");
  EXPECT_EQ(u64_field(bare, "queue"), 128U);

  // Period 0 disables snapshots; otherwise clamps to [10, 60000] ms.
  EXPECT_EQ(u64_field(server.handle(subscribe_request(
                R"({"type": "subscribe", "snapshot_period_ms": 0})")),
                      "snapshot_period_ms"),
            0U);
  EXPECT_EQ(u64_field(server.handle(subscribe_request(
                R"({"type": "subscribe", "snapshot_period_ms": 1})")),
                      "snapshot_period_ms"),
            10U);
  EXPECT_EQ(u64_field(server.handle(subscribe_request(
                R"({"type": "subscribe", "snapshot_period_ms": 9999999})")),
                      "snapshot_period_ms"),
            60000U);
  // Queue clamps to [1, 65536].
  EXPECT_EQ(u64_field(server.handle(subscribe_request(
                R"({"type": "subscribe", "queue": 1000000})")),
                      "queue"),
            65536U);
}

TEST(ServeSubscribe, MalformedRequestsAreTypedErrors) {
  Server server(ServerConfig{});
  for (const char* bad : {
           R"({"type": "subscribe", "filter": "bogus"})",
           R"({"type": "subscribe", "filter": 7})",
           R"({"type": "subscribe", "delta": "yes"})",
           R"({"type": "subscribe", "snapshot_period_ms": "fast"})",
           R"({"type": "subscribe", "queue": -3})",
       }) {
    const Value response = server.handle(parse(bad));
    EXPECT_FALSE(ok(response)) << bad;
    EXPECT_EQ(error_code(response), st::serve::errc::kBadRequest) << bad;
  }
}

// ---- streaming over a real socket -----------------------------------------

class ServeStream : public ::testing::Test {
 protected:
  void start(const char* tag, std::size_t workers = 2,
             std::size_t queue_capacity = 8) {
    config_.socket_path = "/tmp/st-stream-test-" +
                          std::to_string(::getpid()) + "-" + tag + ".sock";
    config_.workers = workers;
    config_.queue_capacity = queue_capacity;
    config_.fleet_threads = 1;
    server_ = std::make_unique<Server>(config_);
    server_->start();
    ASSERT_TRUE(client_.connect(config_.socket_path));
  }

  void TearDown() override {
    client_.close();
    if (server_ != nullptr) {
      server_->stop();
    }
  }

  /// Fresh connection turned into a push stream. Asserts the ack.
  void subscribe(Client& sub, const char* filter,
                 std::uint32_t snapshot_period_ms, bool delta = true,
                 std::size_t queue = 0) {
    ASSERT_TRUE(sub.connect(config_.socket_path));
    const Value ack = sub.subscribe(filter, snapshot_period_ms, delta, queue);
    ASSERT_TRUE(ok(ack)) << ack.dump();
  }

  /// Drain frames until `until(frame)` returns true or the deadline
  /// passes; returns all frames seen (the matching one last).
  std::vector<Value> collect_until(
      Client& sub, const std::function<bool(const Value&)>& until,
      int deadline_ms = 30000) {
    std::vector<Value> frames;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(deadline_ms);
    bool closed = false;
    while (!closed && std::chrono::steady_clock::now() < deadline) {
      auto frame = sub.next_frame(/*timeout_ms=*/200, &closed);
      if (!frame.has_value()) {
        continue;
      }
      frames.push_back(std::move(*frame));
      if (until(frames.back())) {
        return frames;
      }
    }
    return frames;
  }

  std::uint64_t submit_job(const char* job_text) {
    const Value submitted = client_.submit(parse(job_text));
    EXPECT_TRUE(ok(submitted)) << submitted.dump();
    return u64_field(submitted, "id");
  }

  static bool is_terminal_for(const Value& frame, std::uint64_t id,
                              const char* event) {
    const Value* data = frame.find("data");
    if (data == nullptr || u64_field(*data, "id") != id) {
      return false;
    }
    const Value* ev = data->find("event");
    return ev != nullptr && ev->string_or("") == event;
  }

  ServerConfig config_;
  std::unique_ptr<Server> server_;
  Client client_;
};

TEST_F(ServeStream, LifecycleFramesArriveInOrderWithSchema) {
  start("lifecycle");
  Client sub;
  subscribe(sub, "events", 0);

  const std::uint64_t id = submit_job(
      R"({"preset": "paper_walk", "overrides": {"duration_ms": 300, "n_ues": 2}})");
  const auto frames = collect_until(
      sub, [&](const Value& f) { return is_terminal_for(f, id, "done"); });
  ASSERT_FALSE(frames.empty());
  ASSERT_TRUE(is_terminal_for(frames.back(), id, "done"));

  // Schema: every frame is versioned, marked, timed, and contiguous in
  // the per-stream sequence.
  std::uint64_t expect_seq = 0;
  std::vector<std::string> events;
  for (const Value& frame : frames) {
    EXPECT_TRUE(frame.find("telemetry")->as_bool());
    EXPECT_EQ(u64_field(frame, "v"), 1U);
    EXPECT_EQ(u64_field(frame, "seq"), expect_seq++);
    EXPECT_GT(u64_field(frame, "bus_seq"), 0U);
    EXPECT_NE(frame.find("t_ns"), nullptr);
    const std::string kind = frame.find("kind")->as_string();
    EXPECT_TRUE(kind == "job" || kind == "progress") << kind;
    const Value* data = frame.find("data");
    ASSERT_NE(data, nullptr);
    if (u64_field(*data, "id") == id) {
      events.push_back(std::string(data->find("event")->string_or("")));
    }
  }
  // queued, running, one progress frame per UE, done.
  ASSERT_EQ(events.size(), 5U) << frames.back().dump();
  EXPECT_EQ(events[0], "queued");
  EXPECT_EQ(events[1], "running");
  EXPECT_EQ(events[2], "ue_complete");
  EXPECT_EQ(events[3], "ue_complete");
  EXPECT_EQ(events[4], "done");
}

TEST_F(ServeStream, StatsStreamSendsFullThenDeltas) {
  start("statsdelta");
  // Finish one job first so the lifecycle counters exist (metrics are
  // created on first touch) and show up in the full snapshot.
  const std::uint64_t warmup = submit_job(
      R"({"preset": "paper_walk", "overrides": {"duration_ms": 100}})");
  ASSERT_TRUE(client_.wait(warmup).has_value());

  Client sub;
  subscribe(sub, "stats", /*snapshot_period_ms=*/50, /*delta=*/true);

  const auto frames = collect_until(
      sub,
      [n = 0](const Value&) mutable { return ++n >= 3; },
      /*deadline_ms=*/10000);
  ASSERT_GE(frames.size(), 3U);
  for (const Value& frame : frames) {
    EXPECT_EQ(frame.find("kind")->as_string(), "stats");
    // Stats snapshots are stream-local, not bus-published frames.
    EXPECT_EQ(frame.find("bus_seq"), nullptr);
  }
  // First snapshot is complete; later ones carry only changes.
  EXPECT_TRUE(frames[0].find("data")->find("full")->as_bool());
  EXPECT_FALSE(frames[1].find("data")->find("full")->as_bool());
  EXPECT_FALSE(frames[2].find("data")->find("full")->as_bool());
  // The full snapshot names the lifecycle counters.
  EXPECT_NE(frames[0].find("data")->find("counters")->find(
                "serve.jobs.submitted"),
            nullptr);
}

TEST_F(ServeStream, SlowReaderLosesOldestFramesAndIsTold) {
  start("slow");
  Client sub;
  // Queue capacity 1: anything beyond the newest frame is dropped.
  subscribe(sub, "events", 0, /*delta=*/true, /*queue=*/1);

  // Generate a burst of frames without reading: 3 jobs x 4+ frames each.
  std::uint64_t last_id = 0;
  for (int i = 0; i < 3; ++i) {
    last_id = submit_job(
        R"({"preset": "paper_walk", "overrides": {"duration_ms": 200}})");
  }
  ASSERT_TRUE(client_.wait(last_id).has_value());
  // Let the stream thread push the backlog through the size-1 queue.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  std::uint64_t dropped = 0;
  std::uint64_t received = 0;
  bool closed = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!closed && std::chrono::steady_clock::now() < deadline) {
    const auto frame = sub.next_frame(/*timeout_ms=*/100, &closed);
    if (!frame.has_value()) {
      break;  // drained
    }
    ++received;
    dropped += u64_field(*frame, "dropped");
  }
  // 3 jobs x (queued, running, ue_complete, done) = 12 bus frames; a
  // size-1 queue cannot have delivered them all.
  EXPECT_GT(dropped, 0U);
  EXPECT_LT(received, 12U);

  // The server-side ledger agrees someone lost frames.
  const Value stats = client_.stats();
  ASSERT_TRUE(ok(stats));
  EXPECT_GE(u64_field(*stats.find("stats")->find("telemetry"), "dropped"),
            dropped);
}

TEST_F(ServeStream, DisconnectMidStreamCleansUpAndServerStaysHealthy) {
  start("disconnect");
  auto subscriber_count = [&] {
    const Value stats = client_.stats();
    return u64_field(*stats.find("stats")->find("telemetry"), "subscribers");
  };

  {
    Client sub;
    subscribe(sub, "all", 100);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (subscriber_count() == 0 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_EQ(subscriber_count(), 1U);
    // Hard disconnect while the server is mid-push.
    sub.close();
  }

  // The stream loop notices and unsubscribes.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (subscriber_count() != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(subscriber_count(), 0U);

  // And the daemon still serves jobs afterwards.
  const std::uint64_t id = submit_job(
      R"({"preset": "paper_walk", "overrides": {"duration_ms": 100}})");
  const auto final_status = client_.wait(id);
  ASSERT_TRUE(final_status.has_value());
  EXPECT_EQ(final_status->find("state")->as_string(), "done");
}

TEST_F(ServeStream, SubscribeThenCancelStreamsTheCancellation) {
  start("cancel", /*workers=*/1);
  Client sub;
  subscribe(sub, "events", 0);

  // Long job (10 min of sim time) so the cancel lands mid-run.
  const std::uint64_t id = submit_job(
      R"({"preset": "paper_walk", "overrides": {"duration_ms": 600000}})");
  const auto running = collect_until(
      sub, [&](const Value& f) { return is_terminal_for(f, id, "running"); });
  ASSERT_FALSE(running.empty());

  const Value cancelled = client_.cancel(id);
  ASSERT_TRUE(ok(cancelled)) << cancelled.dump();

  const auto frames = collect_until(sub, [&](const Value& f) {
    return is_terminal_for(f, id, "cancelled");
  });
  ASSERT_FALSE(frames.empty());
  EXPECT_TRUE(is_terminal_for(frames.back(), id, "cancelled"));
  EXPECT_EQ(frames.back().find("data")->find("state")->string_or(""),
            "cancelled");
}

TEST_F(ServeStream, ConcurrentSubscribersEachSeeTheWholeLifecycle) {
  start("fanout");
  constexpr std::size_t kSubscribers = 3;
  std::vector<std::unique_ptr<Client>> subs;
  for (std::size_t i = 0; i < kSubscribers; ++i) {
    subs.push_back(std::make_unique<Client>());
    subscribe(*subs.back(), "events", 0);
  }

  const std::uint64_t id = submit_job(
      R"({"preset": "paper_walk", "overrides": {"duration_ms": 300}})");

  std::vector<std::thread> readers;
  std::vector<int> seen(kSubscribers, 0);
  for (std::size_t i = 0; i < kSubscribers; ++i) {
    readers.emplace_back([&, i] {
      const auto frames = collect_until(
          *subs[i], [&](const Value& f) { return is_terminal_for(f, id, "done"); });
      if (!frames.empty() && is_terminal_for(frames.back(), id, "done")) {
        seen[i] = 1;
      }
    });
  }
  for (auto& t : readers) {
    t.join();
  }
  for (std::size_t i = 0; i < kSubscribers; ++i) {
    EXPECT_EQ(seen[i], 1) << "subscriber " << i << " missed the done frame";
  }
}

// The replay pin: a streamed job event is never the only copy. Every
// (id, data.seq) pushed over the stream must be reachable through the
// `events` cursor poll with identical event kind — so a consumer that
// drops frames can always backfill the gap.
TEST_F(ServeStream, StreamedEventsMatchThePollReplay) {
  start("replay");
  Client sub;
  subscribe(sub, "events", 0);

  const std::uint64_t id = submit_job(
      R"({"preset": "paper_walk", "overrides": {"duration_ms": 300, "n_ues": 2}})");
  const auto frames = collect_until(
      sub, [&](const Value& f) { return is_terminal_for(f, id, "done"); });
  ASSERT_TRUE(!frames.empty() && is_terminal_for(frames.back(), id, "done"));

  const Value polled = client_.events(id, /*after=*/0);
  ASSERT_TRUE(ok(polled));
  std::map<std::uint64_t, std::string> by_seq;
  for (const Value& e : polled.find("events")->items()) {
    by_seq[e.find("seq")->as_u64()] = e.find("event")->as_string();
  }

  std::size_t matched = 0;
  for (const Value& frame : frames) {
    const Value* data = frame.find("data");
    if (data == nullptr || u64_field(*data, "id") != id) {
      continue;
    }
    const std::uint64_t seq = u64_field(*data, "seq");
    ASSERT_TRUE(by_seq.count(seq) > 0) << "streamed seq " << seq
                                       << " missing from poll replay";
    EXPECT_EQ(by_seq[seq], data->find("event")->string_or("")) << seq;
    ++matched;
  }
  // Full lifecycle streamed and replayed: queued, running, 2x ue_complete,
  // done.
  EXPECT_EQ(matched, by_seq.size());
  EXPECT_EQ(by_seq.size(), 5U);
}

TEST_F(ServeStream, StatsResponseCarriesProvenanceAndLatencyTails) {
  start("provenance");
  const std::uint64_t id = submit_job(
      R"({"preset": "paper_walk", "overrides": {"duration_ms": 100}})");
  ASSERT_TRUE(client_.wait(id).has_value());

  const Value response = client_.stats();
  ASSERT_TRUE(ok(response));
  const Value* stats = response.find("stats");
  ASSERT_NE(stats, nullptr);

  const Value* provenance = stats->find("provenance");
  ASSERT_NE(provenance, nullptr);
  for (const char* key :
       {"git_describe", "compiler", "build_type", "simd_dispatch"}) {
    const Value* field = provenance->find(key);
    ASSERT_NE(field, nullptr) << key;
    EXPECT_FALSE(field->as_string().empty()) << key;
  }

  // Per-job latency instrumentation: all three digests, each with the
  // p999 tail, and at least the finished job in the e2e histogram.
  // Digest keys drop the "serve." prefix on the wire.
  const Value* latency = stats->find("latency");
  ASSERT_NE(latency, nullptr);
  for (const char* name : {"queue_wait_ms", "run_ms", "e2e_ms"}) {
    const Value* digest = latency->find(name);
    ASSERT_NE(digest, nullptr) << name;
    EXPECT_NE(digest->find("p999"), nullptr) << name;
  }
  EXPECT_GE(u64_field(*latency->find("e2e_ms"), "count"), 1U);
  EXPECT_GE(stats->find("jobs_per_second")->as_double(), 0.0);
  EXPECT_NE(stats->find("shed_rate"), nullptr);
}

}  // namespace
