// JobQueue and job-lifecycle edges under real contention: concurrent
// cancel vs worker pop vs shed at capacity. This file lives in the
// test_serve binary, which the TSan CI leg builds and runs — these
// tests are written to maximise interleavings (many small operations,
// threads started together), and the checked-lifecycle invariants
// (core/invariants.hpp, compiled in by the invariants leg) assert every
// transition these races produce stays on the Fig. 2b-style job state
// machine.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "serve/job.hpp"
#include "serve/job_queue.hpp"
#include "serve/server.hpp"

namespace {

using st::json::parse;
using st::json::Value;
using st::serve::JobQueue;
using st::serve::Server;
using st::serve::ServerConfig;

// ---- JobQueue: push vs pop vs close races ---------------------------------

TEST(JobQueueContention, EveryIdPoppedExactlyOnceOrShed) {
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kPerProducer = 300;
  constexpr std::size_t kConsumers = 3;
  JobQueue queue(/*capacity=*/8);

  // Per-producer bookkeeping, merged after the joins — the test itself
  // must not serialise the threads it is trying to race.
  std::vector<std::vector<std::uint64_t>> admitted(kProducers);
  std::vector<std::uint64_t> shed_counts(kProducers, 0);
  std::vector<std::vector<std::uint64_t>> popped(kConsumers);

  std::vector<std::thread> consumers;
  consumers.reserve(kConsumers);
  for (std::size_t c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&queue, &popped, c] {
      for (;;) {
        const auto id = queue.pop();
        if (!id.has_value()) {
          return;  // closed and fully drained
        }
        popped[c].push_back(*id);
      }
    });
  }

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, &admitted, &shed_counts, p] {
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        const std::uint64_t id = p * kPerProducer + i + 1;
        if (queue.try_push(id)) {
          admitted[p].push_back(id);
        } else {
          ++shed_counts[p];
        }
      }
    });
  }
  for (std::thread& t : producers) {
    t.join();
  }
  queue.close();
  for (std::thread& t : consumers) {
    t.join();
  }

  std::vector<std::uint64_t> all_admitted;
  std::uint64_t total_shed = 0;
  for (std::size_t p = 0; p < kProducers; ++p) {
    all_admitted.insert(all_admitted.end(), admitted[p].begin(),
                        admitted[p].end());
    total_shed += shed_counts[p];
  }
  std::vector<std::uint64_t> all_popped;
  for (const auto& v : popped) {
    all_popped.insert(all_popped.end(), v.begin(), v.end());
  }

  // Conservation: every admitted id is handed to exactly one consumer
  // (close() drains, never drops), every rejection was counted, and no
  // id was invented.
  EXPECT_EQ(all_admitted.size() + total_shed, kProducers * kPerProducer);
  std::sort(all_admitted.begin(), all_admitted.end());
  std::sort(all_popped.begin(), all_popped.end());
  EXPECT_EQ(all_popped, all_admitted);
  EXPECT_EQ(queue.depth(), 0U);
  EXPECT_FALSE(queue.try_push(99999));  // closed stays closed
}

TEST(JobQueueContention, CloseWakesBlockedPops) {
  JobQueue queue(/*capacity=*/4);
  std::atomic<int> woke{0};
  std::vector<std::thread> blocked;
  blocked.reserve(3);
  for (int i = 0; i < 3; ++i) {
    blocked.emplace_back([&queue, &woke] {
      EXPECT_EQ(queue.pop(), std::nullopt);
      woke.fetch_add(1, std::memory_order_relaxed);
    });
  }
  // No sleep: close() must be safe whether or not the pops got blocked
  // first — both interleavings are valid and both must terminate.
  queue.close();
  for (std::thread& t : blocked) {
    t.join();
  }
  EXPECT_EQ(woke.load(std::memory_order_relaxed), 3);
}

// ---- Server: cancel vs worker pop vs shed at capacity ---------------------

std::uint64_t counter_of(const Value& stats, const char* name) {
  return stats.find("stats")->find("jobs")->find(name)->as_u64();
}

TEST(ServerContention, ConcurrentCancelPopAndShedKeepLifecycleConsistent) {
  ServerConfig config;
  config.socket_path =
      "/tmp/st-serve-contention-" + std::to_string(::getpid()) + ".sock";
  config.queue_capacity = 2;  // small on purpose: shed must happen
  config.workers = 2;
  config.fleet_threads = 1;
  Server server(config);
  server.start();

  constexpr std::size_t kSubmitters = 3;
  constexpr std::size_t kPerSubmitter = 12;
  const char* job_text =
      R"({"type":"submit","job":{"preset":"paper_walk","overrides":{"duration_ms":25}}})";

  // Submitters race the workers for queue slots; a canceller races the
  // workers for each job it sees. Every outcome (done, cancelled, shed,
  // already_finished cancel ack) is legal — what must hold afterwards
  // is the conservation of jobs across terminal states.
  std::vector<std::vector<std::uint64_t>> submitted_ids(kSubmitters);
  std::atomic<bool> cancel_done{false};

  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (std::size_t s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&server, &submitted_ids, job_text, s] {
      for (std::size_t i = 0; i < kPerSubmitter; ++i) {
        const Value response = server.handle(parse(job_text));
        const Value* id = response.find("id");
        // Both acks and shed rejections carry the job id.
        ASSERT_NE(id, nullptr) << response.dump();
        submitted_ids[s].push_back(id->as_u64());
      }
    });
  }

  std::thread canceller([&server, &cancel_done] {
    // Sweep ids 1..N repeatedly while submissions are in flight: cancels
    // land on queued, running, and already-terminal jobs alike.
    while (!cancel_done.load(std::memory_order_acquire)) {
      for (std::uint64_t id = 1; id <= kSubmitters * kPerSubmitter; id += 3) {
        Value req = Value::object();
        req.set("type", Value::string("cancel"));
        req.set("id", Value::unsigned_integer(id));
        const Value response = server.handle(req);
        if (!response.find("ok")->as_bool()) {
          const std::string code =
              response.find("error")->find("code")->as_string();
          EXPECT_TRUE(code == "unknown_job" || code == "already_cancelled" ||
                      code == "already_finished")
              << code;
        }
      }
    }
  });

  for (std::thread& t : submitters) {
    t.join();
  }
  server.request_drain();
  server.wait_drained();
  cancel_done.store(true, std::memory_order_release);
  canceller.join();

  // Every submitted id must have reached a terminal state, and the
  // counters must conserve: submitted == done + cancelled + failed + shed.
  const Value stats = server.handle(parse(R"({"type":"stats"})"));
  ASSERT_TRUE(stats.find("ok")->as_bool());
  const std::uint64_t submitted = counter_of(stats, "submitted");
  const std::uint64_t done = counter_of(stats, "done");
  const std::uint64_t cancelled = counter_of(stats, "cancelled");
  const std::uint64_t failed = counter_of(stats, "failed");
  const std::uint64_t shed = counter_of(stats, "shed");
  EXPECT_EQ(submitted, kSubmitters * kPerSubmitter);
  EXPECT_EQ(done + cancelled + failed + shed, submitted);
  // State counters are cumulative entries: every submission enters
  // queued (shed is a queued->shed transition), and only jobs the shed
  // valve admitted can ever start running.
  EXPECT_EQ(counter_of(stats, "queued"), submitted);
  EXPECT_LE(counter_of(stats, "running"), submitted - shed);
  EXPECT_EQ(failed, 0U);  // nothing here submits an invalid job
  EXPECT_EQ(stats.find("stats")->find("jobs_running")->as_u64(), 0U);
  EXPECT_EQ(stats.find("stats")->find("queue_depth")->as_u64(), 0U);

  std::set<std::uint64_t> unique_ids;
  for (const auto& ids : submitted_ids) {
    for (const std::uint64_t id : ids) {
      EXPECT_TRUE(unique_ids.insert(id).second) << "duplicate job id " << id;
      Value req = Value::object();
      req.set("type", Value::string("status"));
      req.set("id", Value::unsigned_integer(id));
      const Value status = server.handle(req);
      ASSERT_TRUE(status.find("ok")->as_bool()) << status.dump();
      const std::string state = status.find("state")->as_string();
      EXPECT_TRUE(state == "done" || state == "cancelled" || state == "shed")
          << "job " << id << " ended in non-terminal state " << state;
    }
  }
  EXPECT_EQ(unique_ids.size(), kSubmitters * kPerSubmitter);

  server.stop();
}

}  // namespace
