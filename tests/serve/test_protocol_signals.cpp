// Signal-delivery robustness of the framed protocol IO.
//
// A process that hosts the serving plane also hosts signal handlers
// (stserved installs SIGINT/SIGTERM handlers for graceful drain), and a
// handler installed *without* SA_RESTART makes every blocking syscall
// in every thread fail with EINTR when any signal lands. These tests
// install exactly such a handler and bombard the IO thread with
// signals while a frame is crossing the socket in deliberately small
// slices — read_frame / read_frame_deadline / write_frame must treat
// EINTR as "resume where you were", never as frame corruption, data
// loss, or a spurious error return.
#include "serve/protocol.hpp"

#include <gtest/gtest.h>
#include <fcntl.h>
#include <pthread.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>

namespace {

using st::serve::FrameReadResult;
using st::serve::FrameStatus;

std::atomic<std::uint64_t> g_signals_delivered{0};

void count_signal(int /*signo*/) {
  g_signals_delivered.fetch_add(1, std::memory_order_relaxed);
}

/// Installs a SIGUSR1 handler with sa_flags = 0 — deliberately NOT
/// SA_RESTART, so a delivered signal interrupts blocking syscalls with
/// EINTR instead of transparently restarting them. Restores the old
/// disposition on destruction.
class InterruptingSignalGuard {
 public:
  InterruptingSignalGuard() {
    struct sigaction sa {};
    sa.sa_handler = count_signal;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;
    EXPECT_EQ(::sigaction(SIGUSR1, &sa, &old_), 0);
  }
  ~InterruptingSignalGuard() { ::sigaction(SIGUSR1, &old_, nullptr); }

 private:
  struct sigaction old_ {};
};

struct SocketPair {
  int a = -1;
  int b = -1;
  SocketPair() {
    int fds[2] = {-1, -1};
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = fds[0];
    b = fds[1];
  }
  ~SocketPair() {
    if (a >= 0) {
      ::close(a);
    }
    if (b >= 0) {
      ::close(b);
    }
  }
};

/// Fire SIGUSR1 at `target` every few hundred microseconds until told
/// to stop; returns how many were sent.
class SignalStorm {
 public:
  explicit SignalStorm(pthread_t target)
      : thread_([this, target] {
          while (!stop_.load(std::memory_order_acquire)) {
            ::pthread_kill(target, SIGUSR1);
            std::this_thread::sleep_for(std::chrono::microseconds(300));
          }
        }) {}
  ~SignalStorm() { stop(); }
  void stop() {
    stop_.store(true, std::memory_order_release);
    if (thread_.joinable()) {
      thread_.join();
    }
  }

 private:
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

std::string frame_bytes(const std::string& payload) {
  const auto len = static_cast<std::uint32_t>(payload.size());
  std::string bytes;
  bytes.push_back(static_cast<char>(len & 0xFFU));
  bytes.push_back(static_cast<char>((len >> 8U) & 0xFFU));
  bytes.push_back(static_cast<char>((len >> 16U) & 0xFFU));
  bytes.push_back(static_cast<char>((len >> 24U) & 0xFFU));
  bytes += payload;
  return bytes;
}

TEST(ProtocolSignals, ReadFrameResumesAcrossEintrMidFrame) {
  const InterruptingSignalGuard guard;
  const SocketPair sockets;
  const std::string payload(20000, 'x');
  const std::string bytes = frame_bytes(payload);

  FrameReadResult result;
  std::thread reader([&] {
    result = st::serve::read_frame(sockets.a, 1U << 20U, nullptr);
  });
  SignalStorm storm(reader.native_handle());

  // Drip the frame through in small slices with pauses, so the reader
  // spends the whole transfer blocked (in poll or in a short read) with
  // signals raining on it.
  const std::uint64_t before = g_signals_delivered.load();
  constexpr std::size_t kSlice = 512;
  for (std::size_t sent = 0; sent < bytes.size(); sent += kSlice) {
    const std::size_t n = std::min(kSlice, bytes.size() - sent);
    ASSERT_EQ(::send(sockets.b, bytes.data() + sent, n, MSG_NOSIGNAL),
              static_cast<ssize_t>(n));
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  // Stop the storm before joining: a pthread_kill aimed at a joined
  // thread is undefined; at a finished-but-unjoined one it is benign.
  storm.stop();
  reader.join();

  EXPECT_EQ(result.status, FrameStatus::kOk);
  EXPECT_EQ(result.payload, payload);
  // The storm must actually have landed while the frame was in flight,
  // or the test proved nothing.
  EXPECT_GT(g_signals_delivered.load(), before);
}

TEST(ProtocolSignals, ReadFrameDeadlineResumesAcrossEintr) {
  const InterruptingSignalGuard guard;
  const SocketPair sockets;
  const std::string payload = R"({"type":"ping"})";
  const std::string bytes = frame_bytes(payload);

  FrameReadResult result;
  std::thread reader([&] {
    result = st::serve::read_frame_deadline(sockets.a, 1U << 20U,
                                            /*timeout_ms=*/10000);
  });
  SignalStorm storm(reader.native_handle());
  // Let signals interrupt the deadline poll before any byte arrives —
  // an EINTR there must re-poll, not report kTimeout or kError early.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  for (std::size_t sent = 0; sent < bytes.size(); ++sent) {
    ASSERT_EQ(::send(sockets.b, bytes.data() + sent, 1, MSG_NOSIGNAL), 1);
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  storm.stop();
  reader.join();

  EXPECT_EQ(result.status, FrameStatus::kOk);
  EXPECT_EQ(result.payload, payload);
}

TEST(ProtocolSignals, WriteFrameResumesAcrossEintrAndEagain) {
  const InterruptingSignalGuard guard;
  const SocketPair sockets;
  // Non-blocking writer with a minimal send buffer: write_frame will hit
  // both short sends and EAGAIN (buffer full), interleaved with EINTR
  // from the storm. The kernel clamps SO_SNDBUF to its floor, which is
  // exactly what we want — the smallest legal buffer.
  const int tiny = 1;
  ASSERT_EQ(::setsockopt(sockets.a, SOL_SOCKET, SO_SNDBUF, &tiny,
                         sizeof(tiny)),
            0);
  ASSERT_EQ(::fcntl(sockets.a, F_SETFL, O_NONBLOCK), 0);

  std::string payload(256 * 1024, '\0');
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>('a' + (i % 23));
  }

  bool wrote = false;
  std::thread writer(
      [&] { wrote = st::serve::write_frame(sockets.a, payload); });
  SignalStorm storm(writer.native_handle());

  // Drain slowly on the blocking side so the writer keeps refilling the
  // tiny buffer; the whole frame must still arrive intact and in order.
  const FrameReadResult result =
      st::serve::read_frame(sockets.b, 64U << 20U, nullptr);
  storm.stop();
  writer.join();

  EXPECT_TRUE(wrote);
  ASSERT_EQ(result.status, FrameStatus::kOk);
  EXPECT_EQ(result.payload, payload);
}

}  // namespace
