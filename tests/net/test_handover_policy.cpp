#include "net/handover_policy.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/time.hpp"

namespace st::net {
namespace {

using namespace st::sim::literals;
using sim::Duration;
using sim::Time;

SsbObservation detection(CellId cell, double rss_dbm, Time t,
                         phy::BeamId tx_beam = 2, phy::BeamId rx_beam = 1) {
  SsbObservation obs;
  obs.t = t;
  obs.cell = cell;
  obs.tx_beam = tx_beam;
  obs.rx_beam = rx_beam;
  obs.rss_dbm = rss_dbm;
  obs.snr_db = 10.0;
  obs.detected = true;
  return obs;
}

HandoverPolicyConfig enabled_config() {
  HandoverPolicyConfig config;
  config.enabled = true;
  return config;
}

TEST(HandoverPolicyConfig, ValidateRejectsOutOfRangeFields) {
  EXPECT_NO_THROW(validate(HandoverPolicyConfig{}));
  HandoverPolicyConfig bad;
  bad.hysteresis_db = -0.1;
  EXPECT_THROW(validate(bad), std::invalid_argument);
  bad = HandoverPolicyConfig{};
  bad.load_penalty_db = -1.0;
  EXPECT_THROW(validate(bad), std::invalid_argument);
  bad = HandoverPolicyConfig{};
  bad.penalty_time = Duration::milliseconds(-1);
  EXPECT_THROW(validate(bad), std::invalid_argument);
  bad = HandoverPolicyConfig{};
  bad.candidate_ttl = Duration{};
  EXPECT_THROW(validate(bad), std::invalid_argument);
  bad = HandoverPolicyConfig{};
  bad.crossover_votes = 0;
  EXPECT_THROW(validate(bad), std::invalid_argument);
  bad = HandoverPolicyConfig{};
  bad.rival_scan_period = Duration{};
  EXPECT_THROW(validate(bad), std::invalid_argument);
  bad = HandoverPolicyConfig{};
  bad.ping_pong_window = Duration{};
  EXPECT_THROW(validate(bad), std::invalid_argument);
}

TEST(HandoverPolicyConfig, DecisionRejectsLoadOutsideUnitInterval) {
  EXPECT_THROW(HandoverDecision(enabled_config(), {0.0, 1.5}),
               std::invalid_argument);
  EXPECT_THROW(HandoverDecision(enabled_config(), {-0.2}),
               std::invalid_argument);
  EXPECT_NO_THROW(HandoverDecision(enabled_config(), {0.0, 0.5, 1.0}));
}

TEST(HandoverDecision, ScoreSubtractsLoadPenalty) {
  HandoverPolicyConfig config = enabled_config();
  config.load_penalty_db = 6.0;
  const HandoverDecision decision(config, {0.0, 0.5, 1.0});
  EXPECT_DOUBLE_EQ(decision.load(1), 0.5);
  // Cells beyond the load vector read as idle.
  EXPECT_DOUBLE_EQ(decision.load(7), 0.0);
  EXPECT_DOUBLE_EQ(decision.score_db(0, -70.0), -70.0);
  EXPECT_DOUBLE_EQ(decision.score_db(1, -70.0), -73.0);
  EXPECT_DOUBLE_EQ(decision.score_db(2, -70.0), -76.0);
}

TEST(HandoverDecision, PenaltyTimerRunsFromHandoverAndExpires) {
  HandoverPolicyConfig config = enabled_config();
  config.penalty_time = Duration::milliseconds(8000);
  HandoverDecision decision(config, {});
  const Time t0 = Time::zero() + 1_s;
  EXPECT_FALSE(decision.penalized(0, t0));
  decision.record_handover(/*from=*/0, /*to=*/1, t0);
  EXPECT_TRUE(decision.penalized(0, t0));
  EXPECT_TRUE(decision.penalized(0, t0 + 7999_ms));
  EXPECT_FALSE(decision.penalized(0, t0 + 8_s));
  // Only the source cell is penalized.
  EXPECT_FALSE(decision.penalized(1, t0));
}

TEST(HandoverDecision, RecordHandoverRefreshesAnExistingTimer) {
  HandoverPolicyConfig config = enabled_config();
  config.penalty_time = Duration::milliseconds(1000);
  HandoverDecision decision(config, {});
  decision.record_handover(0, 1, Time::zero());
  decision.record_handover(0, 2, Time::zero() + 900_ms);
  EXPECT_TRUE(decision.penalized(0, Time::zero() + 1500_ms));
  EXPECT_FALSE(decision.penalized(0, Time::zero() + 1900_ms));
}

TEST(HandoverDecision, SelectPicksMaxScoreWithinNeighborList) {
  HandoverPolicyConfig config = enabled_config();
  config.load_penalty_db = 10.0;
  HandoverDecision decision(config, {0.0, 0.0, 0.8});
  const Time now = Time::zero() + 1_s;
  const NeighborList neighbors{1, 2};
  const std::vector<SsbObservation> detections = {
      detection(3, -50.0, now),  // strongest, but not a neighbour
      detection(1, -70.0, now),
      detection(2, -65.0, now),  // stronger RSS, but 8 dB load penalty
  };
  const auto pick =
      decision.select(detections, neighbors, now, /*serving_alive=*/true);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(detections[*pick].cell, 1U);  // -70 beats -65 - 8 = -73
}

TEST(HandoverDecision, SelectSkipsUndetectedAndReturnsNulloptWhenEmpty) {
  HandoverDecision decision(enabled_config(), {});
  const Time now = Time::zero();
  SsbObservation miss;
  miss.t = now;
  miss.cell = 1;
  EXPECT_FALSE(decision.select({miss}, {1, 2}, now, true).has_value());
  EXPECT_FALSE(decision.select({}, {1, 2}, now, true).has_value());
  // A detection outside the neighbour list never wins.
  EXPECT_FALSE(decision.select({detection(5, -40.0, now)}, {1, 2}, now, true)
                   .has_value());
}

TEST(HandoverDecision, SelectBreaksScoreTiesTowardsLowerCellId) {
  HandoverDecision decision(enabled_config(), {});
  const Time now = Time::zero();
  const std::vector<SsbObservation> detections = {
      detection(2, -70.0, now),
      detection(1, -70.0, now),
  };
  const auto pick = decision.select(detections, {1, 2}, now, true);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(detections[*pick].cell, 1U);
}

TEST(HandoverDecision, SelectHonoursPenaltyOnlyWhileServingAlive) {
  HandoverPolicyConfig config = enabled_config();
  config.penalty_time = Duration::milliseconds(5000);
  HandoverDecision decision(config, {});
  const Time now = Time::zero() + 1_s;
  decision.record_handover(/*from=*/1, /*to=*/0, now);
  const std::vector<SsbObservation> detections = {detection(1, -60.0, now)};
  // Serving alive: the penalized cell is not selectable.
  EXPECT_FALSE(
      decision.select(detections, {1, 2}, now, /*serving_alive=*/true)
          .has_value());
  // Serving dead: any cell beats no cell (the emergency rule).
  EXPECT_TRUE(
      decision.select(detections, {1, 2}, now, /*serving_alive=*/false)
          .has_value());
}

TEST(HandoverDecision, ObserveKeepsStrongerBeamsOnFreshWeakerSamples) {
  HandoverDecision decision(enabled_config(), {});
  const Time t0 = Time::zero();
  decision.observe(detection(1, -60.0, t0, /*tx_beam=*/4, /*rx_beam=*/3));
  // A weaker fresh sample refreshes the level but keeps the best beams.
  decision.observe(detection(1, -65.0, t0 + 100_ms, 6, 5));
  auto c = decision.candidate(1);
  ASSERT_TRUE(c.has_value());
  EXPECT_DOUBLE_EQ(c->rss_dbm, -65.0);
  EXPECT_EQ(c->tx_beam, 4);
  EXPECT_EQ(c->rx_beam, 3);
  // A stale slot restarts from the new measurement's beams.
  decision.observe(detection(1, -70.0, t0 + 10_s, 6, 5));
  c = decision.candidate(1);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->tx_beam, 6);
  EXPECT_EQ(c->rx_beam, 5);
  // Undetected observations are ignored.
  SsbObservation miss;
  miss.cell = 2;
  decision.observe(miss);
  EXPECT_FALSE(decision.candidate(2).has_value());
}

TEST(HandoverDecision, UpdateRssRefreshesWithoutTouchingBeams) {
  HandoverDecision decision(enabled_config(), {});
  const Time t0 = Time::zero();
  decision.observe(detection(1, -60.0, t0, 4, 3));
  decision.update_rss(1, -58.5, t0 + 200_ms);
  const auto c = decision.candidate(1);
  ASSERT_TRUE(c.has_value());
  EXPECT_DOUBLE_EQ(c->rss_dbm, -58.5);
  EXPECT_EQ(c->observed_at, t0 + 200_ms);
  EXPECT_EQ(c->tx_beam, 4);
  EXPECT_EQ(c->rx_beam, 3);
}

TEST(HandoverDecision, ClearCandidatesForgetsMeasurementsNotPenalties) {
  HandoverPolicyConfig config = enabled_config();
  config.penalty_time = Duration::milliseconds(5000);
  HandoverDecision decision(config, {});
  const Time t0 = Time::zero();
  decision.observe(detection(1, -60.0, t0));
  decision.record_handover(2, 1, t0);
  decision.clear_candidates();
  EXPECT_FALSE(decision.candidate(1).has_value());
  EXPECT_TRUE(decision.penalized(2, t0 + 1_s));
}

TEST(HandoverDecision, CrossoverNeedsConsecutiveWinsByTheSameRival) {
  HandoverPolicyConfig config = enabled_config();
  config.hysteresis_db = 3.0;
  config.crossover_votes = 3;
  HandoverDecision decision(config, {});
  const NeighborList neighbors{1, 2};
  const Time now = Time::zero() + 1_s;
  // Rival 2 beats the incumbent's -70 dBm by more than 3 dB.
  decision.observe(detection(2, -65.0, now));
  EXPECT_FALSE(decision.crossover(1, -70.0, neighbors, now).has_value());
  EXPECT_FALSE(decision.crossover(1, -70.0, neighbors, now).has_value());
  const auto choice = decision.crossover(1, -70.0, neighbors, now);
  ASSERT_TRUE(choice.has_value());
  EXPECT_EQ(choice->cell, 2U);
  EXPECT_DOUBLE_EQ(choice->score_db, -65.0);
  EXPECT_EQ(decision.crossovers_fired(), 1U);
  // Firing resets the race: the next call starts the votes over.
  EXPECT_FALSE(decision.crossover(1, -70.0, neighbors, now).has_value());
}

TEST(HandoverDecision, CrossoverVotesResetWhenTheRivalStopsWinning) {
  HandoverPolicyConfig config = enabled_config();
  config.hysteresis_db = 3.0;
  config.crossover_votes = 2;
  HandoverDecision decision(config, {});
  const NeighborList neighbors{1, 2};
  const Time now = Time::zero() + 1_s;
  decision.observe(detection(2, -65.0, now));
  EXPECT_FALSE(decision.crossover(1, -70.0, neighbors, now).has_value());
  // The incumbent recovers: within the hysteresis margin, no win.
  EXPECT_FALSE(decision.crossover(1, -64.0, neighbors, now).has_value());
  // The rival must win crossover_votes times again from scratch.
  EXPECT_FALSE(decision.crossover(1, -70.0, neighbors, now).has_value());
  EXPECT_TRUE(decision.crossover(1, -70.0, neighbors, now).has_value());
}

TEST(HandoverDecision, CrossoverIgnoresStalePenalizedAndHysteresisLosers) {
  HandoverPolicyConfig config = enabled_config();
  config.hysteresis_db = 3.0;
  config.crossover_votes = 1;
  config.candidate_ttl = Duration::milliseconds(2000);
  config.penalty_time = Duration::milliseconds(8000);
  HandoverDecision decision(config, {});
  const NeighborList neighbors{1, 2};
  Time now = Time::zero() + 1_s;
  // Within the hysteresis margin: not a win.
  decision.observe(detection(2, -68.0, now));
  EXPECT_FALSE(decision.crossover(1, -70.0, neighbors, now).has_value());
  // Clear the margin: wins with votes == 1.
  decision.observe(detection(2, -65.0, now));
  EXPECT_TRUE(decision.crossover(1, -70.0, neighbors, now).has_value());
  // Stale measurement: no longer supports a retarget.
  now = now + 3_s;
  EXPECT_FALSE(decision.crossover(1, -70.0, neighbors, now).has_value());
  // Fresh again but penalized: still not eligible.
  decision.observe(detection(2, -65.0, now));
  decision.record_handover(/*from=*/2, /*to=*/1, now);
  EXPECT_FALSE(decision.crossover(1, -70.0, neighbors, now).has_value());
}

TEST(HandoverDecision, NextRivalRoundRobinsOverTheNeighborList) {
  HandoverDecision decision(enabled_config(), {});
  const NeighborList neighbors{1, 2, 3};
  EXPECT_EQ(decision.next_rival(neighbors, /*tracked=*/2), 1U);
  EXPECT_EQ(decision.next_rival(neighbors, 2), 3U);
  EXPECT_EQ(decision.next_rival(neighbors, 2), 1U);
  // The tracked cell is skipped without stalling the cursor.
  EXPECT_EQ(decision.next_rival(neighbors, 1), 2U);
  EXPECT_FALSE(decision.next_rival({2}, 2).has_value());
  EXPECT_FALSE(decision.next_rival({}, 2).has_value());
}

}  // namespace
}  // namespace st::net
