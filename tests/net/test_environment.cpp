#include "net/environment.hpp"

#include <gtest/gtest.h>

#include "net/test_helpers.hpp"
#include "phy/pathloss.hpp"

namespace st::net {
namespace {

using namespace st::sim::literals;
using sim::Time;

TEST(Environment, ConstructionValidation) {
  auto ue = test::standing_at({10.0, 10.0, 0.0});
  EXPECT_THROW(RadioEnvironment(test::clean_environment(), {}, ue,
                                phy::Codebook::omni()),
               std::invalid_argument);
  Deployment d = test::two_cells();
  EXPECT_THROW(RadioEnvironment(test::clean_environment(),
                                std::move(d.base_stations), nullptr,
                                phy::Codebook::omni()),
               std::invalid_argument);
}

TEST(Environment, CellAccessors) {
  auto env = test::make_two_cell_env(test::standing_at({30.0, 10.0, 0.0}));
  EXPECT_EQ(env.cell_count(), 2U);
  EXPECT_EQ(env.bs(0).id(), 0U);
  EXPECT_EQ(env.bs(1).id(), 1U);
  EXPECT_THROW((void)env.bs(2), std::out_of_range);
  EXPECT_THROW((void)env.bs_mutable(5), std::out_of_range);
  EXPECT_THROW((void)env.channel(9), std::out_of_range);
}

TEST(Environment, ObservationCarriesIdentity) {
  auto env = test::make_two_cell_env(test::standing_at({10.0, 10.0, 0.0}));
  const SsbObservation obs = env.observe_ssb(0, 2, 5, Time::zero() + 3_ms);
  EXPECT_EQ(obs.cell, 0U);
  EXPECT_EQ(obs.tx_beam, 2U);
  EXPECT_EQ(obs.rx_beam, 5U);
  EXPECT_EQ(obs.t, Time::zero() + 3_ms);
}

TEST(Environment, StrongLinkAlwaysDetected) {
  // UE right under cell 0 with the best beams: enormous SNR.
  auto ue = test::standing_at({0.0, 10.0, 0.0});
  auto env = test::make_two_cell_env(ue);
  const auto best = env.ground_truth_best_pair(0, Time::zero());
  for (int i = 0; i < 50; ++i) {
    const SsbObservation obs =
        env.observe_ssb(0, best.tx_beam, best.rx_beam, Time::zero());
    EXPECT_TRUE(obs.detected);
    EXPECT_NEAR(obs.rss_dbm, best.rx_power_dbm, 1e-9);  // sigma_db = 0
  }
}

TEST(Environment, HopelessLinkNeverDetected) {
  // Omni UE fifty+ metres from cell 1 with a backwards-pointing BS beam.
  auto ue = test::standing_at({0.0, 10.0, 0.0});
  auto env = test::make_two_cell_env(ue, /*ue_beamwidth_deg=*/0.0);
  const auto worst = [&] {
    phy::BeamId beam = 0;
    double lowest = 1e9;
    for (const auto& b : env.bs(1).codebook().beams()) {
      const double snr = env.true_dl_snr_db(1, b.id(), 0, Time::zero());
      if (snr < lowest) {
        lowest = snr;
        beam = b.id();
      }
    }
    return beam;
  }();
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(env.observe_ssb(1, worst, 0, Time::zero()).detected);
  }
}

TEST(Environment, GroundTruthBestPairIsArgmax) {
  auto ue = test::standing_at({20.0, 10.0, 0.0});
  auto env = test::make_two_cell_env(ue);
  const auto best = env.ground_truth_best_pair(0, Time::zero());
  for (const auto& tb : env.bs(0).codebook().beams()) {
    for (const auto& rb : env.ue_codebook().beams()) {
      const double snr = env.true_dl_snr_db(0, tb.id(), rb.id(), Time::zero());
      EXPECT_LE(snr + env.link_budget().noise_floor_dbm(),
                best.rx_power_dbm + 1e-9);
    }
  }
}

TEST(Environment, GroundTruthBestRxConsistent) {
  auto ue = test::standing_at({25.0, 10.0, 0.0});
  auto env = test::make_two_cell_env(ue);
  const auto pair = env.ground_truth_best_pair(0, Time::zero());
  const auto rx = env.ground_truth_best_rx(0, pair.tx_beam, Time::zero());
  EXPECT_EQ(rx.beam, pair.rx_beam);
  EXPECT_NEAR(rx.rx_power_dbm, pair.rx_power_dbm, 1e-9);
}

TEST(Environment, UplinkWeakerThanDownlink) {
  // Same geometry/beams, lower UE power: uplink success rate can only be
  // lower or equal. Test at a level where downlink always succeeds.
  auto ue = test::standing_at({10.0, 10.0, 0.0});
  auto env = test::make_two_cell_env(ue);
  const auto best = env.ground_truth_best_pair(0, Time::zero());
  int up = 0;
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(
        env.downlink_success(0, best.tx_beam, best.rx_beam, Time::zero()));
    up += env.uplink_success(0, best.rx_beam, best.tx_beam, Time::zero()) ? 1
                                                                          : 0;
  }
  EXPECT_GT(up, 90);  // still fine here, just not guaranteed stronger
}

TEST(Environment, PowerRampingImprovesUplink) {
  // Position the UE where the bare uplink is hopeless and 30 dB of ramp
  // saves it (steep detector makes this nearly a step function).
  auto ue = test::standing_at({45.0, 10.0, 0.0});
  auto env = test::make_two_cell_env(ue, 0.0);  // omni UE
  const auto best = env.ground_truth_best_pair(0, Time::zero());
  int bare = 0;
  int ramped = 0;
  for (int i = 0; i < 60; ++i) {
    bare += env.uplink_success(0, best.rx_beam, best.tx_beam, Time::zero())
                ? 1
                : 0;
    ramped += env.uplink_success(0, best.rx_beam, best.tx_beam, Time::zero(),
                                 30.0)
                  ? 1
                  : 0;
  }
  EXPECT_LT(bare, 10);
  EXPECT_GT(ramped, 50);
}

TEST(Environment, MeasureLinkRssReportsFloorWhenHopeless) {
  auto ue = test::standing_at({0.0, 10.0, 0.0});
  auto env = test::make_two_cell_env(ue, 0.0);
  // Find a hopeless pair on the far cell.
  double rss = 1e9;
  for (const auto& b : env.bs(1).codebook().beams()) {
    rss = std::min(rss, env.measure_link_rss_dbm(1, b.id(), 0, Time::zero()));
  }
  EXPECT_DOUBLE_EQ(rss, env.link_budget().noise_floor_dbm());
}

TEST(Environment, ClosenessOrdersRss) {
  auto ue = test::standing_at({10.0, 10.0, 0.0});  // near cell 0
  auto env = test::make_two_cell_env(ue);
  const auto near = env.ground_truth_best_pair(0, Time::zero());
  const auto far = env.ground_truth_best_pair(1, Time::zero());
  EXPECT_GT(near.rx_power_dbm, far.rx_power_dbm + 6.0);
}

TEST(Environment, SnapshotCacheCountsHitRefreshAndColdMiss) {
  auto env = test::make_two_cell_env(test::standing_at({20.0, 10.0, 0.0}));
  EXPECT_EQ(env.snapshot_stats().hits, 0u);
  EXPECT_EQ(env.snapshot_stats().cold_misses, 0u);
  EXPECT_EQ(env.snapshot_stats().pair_sweeps, 0u);
  EXPECT_DOUBLE_EQ(env.snapshot_stats().hit_rate(), 0.0);

  // First query at t0 builds cell 0's snapshot: a cold miss, no eviction.
  (void)env.ground_truth_best_pair(0, Time::zero());
  EXPECT_EQ(env.snapshot_stats().cold_misses, 1u);
  EXPECT_EQ(env.snapshot_stats().hits, 0u);
  EXPECT_EQ(env.snapshot_stats().invalidations, 0u);
  EXPECT_EQ(env.snapshot_stats().pair_sweeps, 1u);
  EXPECT_EQ(env.snapshot_stats().full_builds, 1u);

  // Same cell, same instant: served from the cached epoch.
  (void)env.ground_truth_best_pair(0, Time::zero());
  EXPECT_EQ(env.snapshot_stats().hits, 1u);
  EXPECT_EQ(env.snapshot_stats().cold_misses, 1u);
  EXPECT_EQ(env.snapshot_stats().pair_sweeps, 2u);

  // A different cell cold-misses without evicting cell 0's entry.
  (void)env.ground_truth_best_pair(1, Time::zero());
  EXPECT_EQ(env.snapshot_stats().cold_misses, 2u);
  EXPECT_EQ(env.snapshot_stats().invalidations, 0u);
  (void)env.ground_truth_best_pair(0, Time::zero());
  EXPECT_EQ(env.snapshot_stats().hits, 2u);

  // A new instant rebuilds in place, warm: a refresh (same UE keeps its
  // reuse state), not an invalidation — that word is reserved for
  // cross-UE evictions.
  (void)env.ground_truth_best_pair(0, Time::zero() + 1_ms);
  EXPECT_EQ(env.snapshot_stats().refreshes, 1u);
  EXPECT_EQ(env.snapshot_stats().cold_misses, 2u);
  EXPECT_EQ(env.snapshot_stats().invalidations, 0u);
  EXPECT_EQ(env.snapshot_stats().incremental_builds, 1u);

  // Hits and refreshes both reuse state: (2 + 1) of 5 queries.
  EXPECT_DOUBLE_EQ(env.snapshot_stats().hit_rate(), 3.0 / 5.0);
}

TEST(Environment, SweepKernelCountersSplitPairAndRxSweeps) {
  auto env = test::make_two_cell_env(test::standing_at({20.0, 10.0, 0.0}));
  (void)env.ground_truth_best_pair(0, Time::zero());
  (void)env.ground_truth_best_rx(0, 0, Time::zero());
  (void)env.ground_truth_best_rx(0, 1, Time::zero());
  EXPECT_EQ(env.snapshot_stats().pair_sweeps, 1u);
  EXPECT_EQ(env.snapshot_stats().rx_sweeps, 2u);
  // Sweeps at one instant share a single snapshot build.
  EXPECT_EQ(env.snapshot_stats().cold_misses, 1u);
  EXPECT_EQ(env.snapshot_stats().hits, 2u);
}

TEST(Environment, DetectionDrawsVaryNearThreshold) {
  // With a normal slope, a near-threshold link detects sometimes — the
  // probabilistic middle ground matters for search latency distributions.
  net::EnvironmentConfig config = test::clean_environment();
  config.link.detection_slope_per_db = 1.5;
  Deployment d = test::two_cells();
  auto ue = test::standing_at({38.0, 10.0, 0.0});
  RadioEnvironment env(config, std::move(d.base_stations), ue,
                       phy::Codebook::omni());
  // Pick the beam whose SNR is closest to the detection threshold.
  phy::BeamId beam = 0;
  double closest = 1e9;
  for (const auto& b : env.bs(0).codebook().beams()) {
    const double gap = std::fabs(env.true_dl_snr_db(0, b.id(), 0, Time::zero()) -
                                 config.link.detection_threshold_snr_db);
    if (gap < closest) {
      closest = gap;
      beam = b.id();
    }
  }
  if (closest < 2.0) {
    int detections = 0;
    for (int i = 0; i < 400; ++i) {
      detections += env.observe_ssb(0, beam, 0, Time::zero()).detected ? 1 : 0;
    }
    EXPECT_GT(detections, 20);
    EXPECT_LT(detections, 380);
  }
}

}  // namespace
}  // namespace st::net
