#include "net/rach.hpp"

#include <gtest/gtest.h>

#include <optional>

#include "net/test_helpers.hpp"
#include "sim/simulator.hpp"

namespace st::net {
namespace {

using namespace st::sim::literals;
using sim::Time;

struct RachWorld {
  explicit RachWorld(Vec3 ue_position, double ue_beamwidth = 20.0)
      : env(test::make_two_cell_env(test::standing_at(ue_position),
                                    ue_beamwidth)) {}

  sim::Simulator sim;
  RadioEnvironment env;
  std::optional<RachOutcome> outcome;

  phy::Channel::BestPair best(CellId cell) {
    return env.ground_truth_best_pair(cell, Time::zero());
  }

  void run(CellId cell, phy::BeamId tx_beam, phy::BeamId ue_beam,
           RachConfig config = {}) {
    RachProcedure rach(sim, env, config);
    rach.start(cell, tx_beam, [ue_beam] { return ue_beam; },
               [this](const RachOutcome& o) { outcome = o; });
    sim.run_until(Time::zero() + 5000_ms);
  }
};

TEST(Rach, SucceedsOnAlignedBeams) {
  RachWorld world({55.0, 10.0, 0.0});
  const auto best = world.best(1);
  world.run(1, best.tx_beam, best.rx_beam);
  ASSERT_TRUE(world.outcome.has_value());
  EXPECT_TRUE(world.outcome->success);
  EXPECT_EQ(world.outcome->attempts, 1U);
}

TEST(Rach, LatencyIncludesOccasionWaitAndMessages) {
  RachWorld world({55.0, 10.0, 0.0});
  const auto best = world.best(1);
  world.run(1, best.tx_beam, best.rx_beam);
  ASSERT_TRUE(world.outcome->success);
  const FrameSchedule& schedule = world.env.bs(1).schedule();
  const sim::Duration occasion_wait =
      schedule.next_rach_occasion(Time::zero(), best.tx_beam) - Time::zero();
  // RAR + Msg3 + Msg4 delays: 2 + 2 + 2 ms after the occasion.
  EXPECT_EQ(world.outcome->latency, occasion_wait + 6_ms);
}

TEST(Rach, FailsOnHopelessBeams) {
  // UE near cell 0, trying to access far cell 1 with a backwards beam.
  RachWorld world({5.0, 10.0, 0.0});
  const auto best = world.best(1);
  const auto n = static_cast<phy::BeamId>(world.env.ue_codebook().size());
  const phy::BeamId wrong = (best.rx_beam + n / 2) % n;
  RachConfig config;
  config.max_attempts = 4;
  world.run(1, best.tx_beam, wrong, config);
  ASSERT_TRUE(world.outcome.has_value());
  EXPECT_FALSE(world.outcome->success);
  EXPECT_EQ(world.outcome->attempts, 4U);
}

TEST(Rach, BeamProviderConsultedDuringProcedure) {
  // The beam provider switches from a hopeless to the right beam after
  // the first attempt; the procedure must then succeed — the property
  // Silent Tracker relies on (tracking continues during access). The
  // mobile is far enough out that the wrong beam's sidelobe cannot carry
  // the preamble.
  RachWorld world({40.0, 10.0, 0.0});
  const auto best = world.best(1);
  const auto n = static_cast<phy::BeamId>(world.env.ue_codebook().size());
  const phy::BeamId wrong = (best.rx_beam + n / 2) % n;

  int calls = 0;
  RachProcedure rach(world.sim, world.env, RachConfig{});
  rach.start(1, best.tx_beam,
             [&]() -> phy::BeamId {
               ++calls;
               return calls <= 1 ? wrong : best.rx_beam;
             },
             [&](const RachOutcome& o) { world.outcome = o; });
  world.sim.run_until(Time::zero() + 5000_ms);
  ASSERT_TRUE(world.outcome.has_value());
  EXPECT_TRUE(world.outcome->success);
  EXPECT_GE(world.outcome->attempts, 2U);
}

TEST(Rach, RetriesRampPower) {
  // At a range where the bare uplink is marginal but + ramps make it
  // solid, retries must eventually get through.
  RachWorld world({40.0, 10.0, 0.0});
  const auto best = world.best(1);
  RachConfig config;
  config.max_attempts = 8;
  config.power_ramp_db = 6.0;
  world.run(1, best.tx_beam, best.rx_beam, config);
  ASSERT_TRUE(world.outcome.has_value());
  EXPECT_TRUE(world.outcome->success);
}

TEST(Rach, AbortSuppressesCallback) {
  RachWorld world({55.0, 10.0, 0.0});
  const auto best = world.best(1);
  RachProcedure rach(world.sim, world.env, RachConfig{});
  bool fired = false;
  rach.start(1, best.tx_beam, [&] { return best.rx_beam; },
             [&](const RachOutcome&) { fired = true; });
  EXPECT_TRUE(rach.running());
  rach.abort();
  EXPECT_FALSE(rach.running());
  world.sim.run_until(Time::zero() + 1000_ms);
  EXPECT_FALSE(fired);
}

TEST(Rach, InvalidUsageThrows) {
  RachWorld world({55.0, 10.0, 0.0});
  RachConfig bad;
  bad.max_attempts = 0;
  EXPECT_THROW(RachProcedure(world.sim, world.env, bad),
               std::invalid_argument);

  RachProcedure rach(world.sim, world.env, RachConfig{});
  EXPECT_THROW(rach.start(1, 0, nullptr, [](const RachOutcome&) {}),
               std::invalid_argument);
  EXPECT_THROW(rach.start(1, 0, [] { return phy::BeamId{0}; }, nullptr),
               std::invalid_argument);
  rach.start(1, 0, [] { return phy::BeamId{0}; }, [](const RachOutcome&) {});
  EXPECT_THROW(
      rach.start(1, 0, [] { return phy::BeamId{0}; }, [](const RachOutcome&) {}),
      std::logic_error);
}

TEST(Rach, WaitsForBeamMappedOccasion) {
  RachWorld world({55.0, 10.0, 0.0});
  const auto best = world.best(1);
  // Run and verify the first preamble goes at the occasion mapped to the
  // target's SSB beam (occasions cycle every rach_period over beams).
  const Time expected =
      world.env.bs(1).schedule().next_rach_occasion(Time::zero(), best.tx_beam);
  world.run(1, best.tx_beam, best.rx_beam);
  ASSERT_TRUE(world.outcome->success);
  EXPECT_GE(world.outcome->latency, expected - Time::zero());
}

}  // namespace
}  // namespace st::net
