#include "net/basestation.hpp"

#include <gtest/gtest.h>

namespace st::net {
namespace {

using namespace st::sim::literals;

BaseStation make_bs() {
  FrameConfig frame;
  frame.ssb_beams = 8;
  Pose pose;
  pose.position = {5.0, 0.0, 0.0};
  return BaseStation(3, pose, phy::Codebook::from_beamwidth_deg(45.0), 13.0,
                     FrameSchedule(frame, 7_ms));
}

TEST(BaseStation, AccessorsReflectConstruction) {
  const BaseStation bs = make_bs();
  EXPECT_EQ(bs.id(), 3U);
  EXPECT_EQ(bs.pose().position, (Vec3{5.0, 0.0, 0.0}));
  EXPECT_EQ(bs.codebook().size(), 8U);
  EXPECT_DOUBLE_EQ(bs.tx_power_dbm(), 13.0);
  EXPECT_EQ(bs.schedule().offset(), 7_ms);
}

TEST(BaseStation, ServingBeamDefaultsToZero) {
  const BaseStation bs = make_bs();
  EXPECT_EQ(bs.serving_tx_beam(), 0U);
}

TEST(BaseStation, ServingBeamMutable) {
  BaseStation bs = make_bs();
  bs.set_serving_tx_beam(5);
  EXPECT_EQ(bs.serving_tx_beam(), 5U);
}

TEST(BaseStation, AdjacentServingBeamsAreCyclicNeighbours) {
  BaseStation bs = make_bs();
  bs.set_serving_tx_beam(0);
  const auto [left, right] = bs.adjacent_serving_beams();
  EXPECT_EQ(left, 7U);
  EXPECT_EQ(right, 1U);

  bs.set_serving_tx_beam(7);
  const auto [left2, right2] = bs.adjacent_serving_beams();
  EXPECT_EQ(left2, 6U);
  EXPECT_EQ(right2, 0U);
}

}  // namespace
}  // namespace st::net
