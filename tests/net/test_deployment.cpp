#include "net/deployment.hpp"

#include <gtest/gtest.h>

#include "common/units.hpp"

namespace st::net {
namespace {

using namespace st::sim::literals;
using sim::Time;

TEST(Deployment, CellRowGeometry) {
  DeploymentConfig config;
  config.inter_site_m = 60.0;
  const Deployment d = make_cell_row(config, 3);
  ASSERT_EQ(d.base_stations.size(), 3U);
  EXPECT_EQ(d.base_stations[0].pose().position.x, 0.0);
  EXPECT_EQ(d.base_stations[1].pose().position.x, 60.0);
  EXPECT_EQ(d.base_stations[2].pose().position.x, 120.0);
  EXPECT_DOUBLE_EQ(d.boundary_between(0, 1).x, 30.0);
  EXPECT_EQ(d.shape, DeploymentShape::kRow);
  EXPECT_EQ(d.grid_cols, 0U);
}

TEST(Deployment, CellIdsSequential) {
  const Deployment d = make_cell_row(DeploymentConfig{}, 3);
  for (CellId i = 0; i < 3; ++i) {
    EXPECT_EQ(d.base_stations[i].id(), i);
  }
}

TEST(Deployment, SsbBeamsMatchCodebook) {
  DeploymentConfig config;
  config.bs_beamwidth_deg = 45.0;  // -> 8 beams
  const Deployment d = make_cell_row(config, 2);
  for (const auto& bs : d.base_stations) {
    EXPECT_EQ(bs.schedule().config().ssb_beams, bs.codebook().size());
    EXPECT_EQ(bs.codebook().size(), 8U);
  }
}

TEST(Deployment, SchedulesAreStaggered) {
  DeploymentConfig config;
  config.schedule_stagger = 7_ms;
  const Deployment d = make_cell_row(config, 3);
  EXPECT_EQ(d.base_stations[0].schedule().offset(), sim::Duration{});
  EXPECT_EQ(d.base_stations[1].schedule().offset(), 7_ms);
  EXPECT_EQ(d.base_stations[2].schedule().offset(), 14_ms);
}

TEST(Deployment, InvalidConfigThrows) {
  EXPECT_THROW(make_cell_row(DeploymentConfig{}, 0), std::invalid_argument);
  DeploymentConfig bad;
  bad.inter_site_m = 0.0;
  EXPECT_THROW(make_cell_row(bad, 2), std::invalid_argument);
  bad = DeploymentConfig{};
  bad.corridor_offset_m = -1.0;
  EXPECT_THROW(make_cell_row(bad, 2), std::invalid_argument);
}

TEST(Trajectories, EdgeWalkCrossesBoundary) {
  const Deployment d = make_cell_row(DeploymentConfig{}, 2);
  const auto walk = make_edge_walk(d, 1.4, 30_s, 1);
  const Pose start = walk->pose_at(Time::zero());
  EXPECT_LT(start.position.x, d.boundary_between(0, 1).x);
  EXPECT_NEAR(start.position.y, d.config.corridor_offset_m, 0.1);
  const Pose end = walk->pose_at(Time::zero() + 30_s);
  EXPECT_GT(end.position.x, d.boundary_between(0, 1).x);
  EXPECT_DOUBLE_EQ(walk->speed_at(Time::zero()), 1.4);
}

TEST(Trajectories, EdgeRotationSitsInOverlapRegion) {
  const Deployment d = make_cell_row(DeploymentConfig{}, 2);
  const auto rot = make_edge_rotation(d, 120.0);
  const Pose p = rot->pose_at(Time::zero() + 5_s);
  // On the serving side of the boundary, within the overlap region.
  EXPECT_LT(p.position.x, d.boundary_between(0, 1).x);
  EXPECT_GT(p.position.x, d.boundary_between(0, 1).x - 15.0);
  EXPECT_DOUBLE_EQ(p.position.y, d.config.corridor_offset_m);
  EXPECT_DOUBLE_EQ(rot->speed_at(Time::zero()), 0.0);
  // Rotates a full turn every 3 s at 120 deg/s.
  EXPECT_NE(rot->pose_at(Time::zero() + 1_s).orientation.yaw(),
            rot->pose_at(Time::zero()).orientation.yaw());
}

TEST(Deployment, RowNeighborListsAreEveryOtherCellInIdOrder) {
  const Deployment d = make_cell_row(DeploymentConfig{}, 3);
  ASSERT_EQ(d.neighbor_lists.size(), 3U);
  EXPECT_EQ(d.neighbors(0), (NeighborList{1, 2}));
  EXPECT_EQ(d.neighbors(1), (NeighborList{0, 2}));
  EXPECT_EQ(d.neighbors(2), (NeighborList{0, 1}));
  EXPECT_THROW(static_cast<void>(d.neighbors(3)), std::out_of_range);
}

TEST(Deployment, BoundaryBetweenIsTheSiteMidpoint) {
  DeploymentConfig config;
  config.inter_site_m = 60.0;
  const Deployment d = make_grid(config, 9, 3);
  const Vec3 mid = d.boundary_between(0, 4);  // (0,0) and (60,60)
  EXPECT_DOUBLE_EQ(mid.x, 30.0);
  EXPECT_DOUBLE_EQ(mid.y, 30.0);
  EXPECT_THROW(static_cast<void>(d.boundary_between(0, 9)),
               std::out_of_range);
}

TEST(Deployment, GridGeometryIsRowMajor) {
  DeploymentConfig config;
  config.inter_site_m = 60.0;
  const Deployment d = make_grid(config, 9, 3);
  ASSERT_EQ(d.base_stations.size(), 9U);
  EXPECT_EQ(d.shape, DeploymentShape::kGrid);
  EXPECT_EQ(d.grid_cols, 3U);
  // Cell 5 is row 1, column 2.
  EXPECT_DOUBLE_EQ(d.base_stations[5].pose().position.x, 120.0);
  EXPECT_DOUBLE_EQ(d.base_stations[5].pose().position.y, 60.0);
  // cols == 0 picks the squarest grid: ceil(sqrt(9)) == 3.
  EXPECT_EQ(make_grid(config, 9).grid_cols, 3U);
  // cols is clamped to n_cells.
  EXPECT_EQ(make_grid(config, 2, 5).grid_cols, 2U);
}

TEST(Deployment, GridNeighborsAreAdjacentSitesNearestFirst) {
  const Deployment d = make_grid(DeploymentConfig{}, 9, 3);
  // Corner cell 0: axial 1, 3 then diagonal 4 — nothing further.
  EXPECT_EQ(d.neighbors(0), (NeighborList{1, 3, 4}));
  // Centre cell 4 reaches all eight surrounding sites, axials first.
  EXPECT_EQ(d.neighbors(4), (NeighborList{1, 3, 5, 7, 0, 2, 6, 8}));
  // Edge cell 1: axials 0, 2, 4 then diagonals 3, 5.
  EXPECT_EQ(d.neighbors(1), (NeighborList{0, 2, 4, 3, 5}));
}

TEST(Deployment, OneRowGridPlacesCellsLikeTheRow) {
  DeploymentConfig config;
  config.inter_site_m = 60.0;
  const Deployment row = make_cell_row(config, 2);
  const Deployment grid = make_grid(config, 2, 2);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(grid.base_stations[i].pose().position.x,
              row.base_stations[i].pose().position.x);
    EXPECT_EQ(grid.base_stations[i].pose().position.y,
              row.base_stations[i].pose().position.y);
  }
  // Same candidate sets here too; the shapes only diverge beyond ~2 cells
  // apart, where the grid stops listing distant sites.
  EXPECT_EQ(grid.neighbor_lists, row.neighbor_lists);
}

TEST(Deployment, CorridorAlternatesStreetSides) {
  DeploymentConfig config;
  config.inter_site_m = 60.0;
  config.corridor_offset_m = 10.0;
  const Deployment d = make_corridor(config, 4);
  EXPECT_EQ(d.shape, DeploymentShape::kCorridor);
  EXPECT_DOUBLE_EQ(d.base_stations[0].pose().position.y, 0.0);
  EXPECT_DOUBLE_EQ(d.base_stations[1].pose().position.y, 20.0);
  EXPECT_DOUBLE_EQ(d.base_stations[2].pose().position.y, 0.0);
  EXPECT_DOUBLE_EQ(d.base_stations[3].pose().position.y, 20.0);
  // The mid-street drive line (y = corridor offset) is equidistant from
  // both street sides.
  EXPECT_DOUBLE_EQ(d.boundary_between(0, 1).y, config.corridor_offset_m);
}

TEST(Deployment, CorridorNeighborsAreTwoLampsEachWay) {
  const Deployment d = make_corridor(DeploymentConfig{}, 6);
  // Cell 2 sees i±1 (across the street, nearest) then i±2 (same side).
  EXPECT_EQ(d.neighbors(2), (NeighborList{1, 3, 0, 4}));
  // End cell only looks forward.
  EXPECT_EQ(d.neighbors(0), (NeighborList{1, 2}));
  // Cell 5 too far from cells 0..2.
  EXPECT_EQ(d.neighbors(5), (NeighborList{4, 3}));
}

TEST(Deployment, NewShapesValidateGeometry) {
  EXPECT_THROW(make_grid(DeploymentConfig{}, 0), std::invalid_argument);
  EXPECT_THROW(make_corridor(DeploymentConfig{}, 0), std::invalid_argument);
  DeploymentConfig bad;
  bad.inter_site_m = -1.0;
  EXPECT_THROW(make_grid(bad, 4), std::invalid_argument);
  EXPECT_THROW(make_corridor(bad, 4), std::invalid_argument);
}

TEST(Deployment, CentralPairPicksTheMiddleAdjacentCells) {
  // Row of 3: the middle pair is (1, 2) by the (n-1)/2 rule.
  EXPECT_EQ(central_pair(make_cell_row(DeploymentConfig{}, 3)),
            (std::pair<CellId, CellId>{1, 2}));
  EXPECT_EQ(central_pair(make_cell_row(DeploymentConfig{}, 2)),
            (std::pair<CellId, CellId>{0, 1}));
  // 3x3 grid: the middle row is cells 3..5 and its middle pair is (4, 5).
  EXPECT_EQ(central_pair(make_grid(DeploymentConfig{}, 9, 3)),
            (std::pair<CellId, CellId>{4, 5}));
  // Partial last row: 7 cells over 3 columns -> rows 0..2, row 2 holds
  // only cell 6, so central_pair steps back to row 1 -> (4, 5).
  EXPECT_EQ(central_pair(make_grid(DeploymentConfig{}, 7, 3)),
            (std::pair<CellId, CellId>{4, 5}));
  EXPECT_EQ(central_pair(make_corridor(DeploymentConfig{}, 6)),
            (std::pair<CellId, CellId>{2, 3}));
  EXPECT_THROW(static_cast<void>(central_pair(make_cell_row(
                   DeploymentConfig{}, 1))),
               std::invalid_argument);
}

TEST(Trajectories, EdgePingPongShuttlesAcrossTheCentralBoundary) {
  DeploymentConfig config;
  config.inter_site_m = 60.0;
  const Deployment d = make_grid(config, 9, 3);
  const auto [a, b] = central_pair(d);
  const Vec3 mid = d.boundary_between(a, b);
  const auto shuttle = make_edge_ping_pong(d, 5.0, 30.0, 20_s);
  const Pose start = shuttle->pose_at(Time::zero());
  // Starts amplitude short of the midpoint along the pair axis (+x for
  // the middle grid row), offset onto the corridor line.
  EXPECT_NEAR(start.position.x, mid.x - 30.0, 1e-9);
  // Crosses the boundary: 30 m at 5 m/s puts it at the midpoint by 6 s
  // and past it at 8 s.
  EXPECT_GT(shuttle->pose_at(Time::zero() + 8_s).position.x, mid.x);
  // And shuttles back: one 60 m leg takes 12 s, so at 20 s it is 40 m
  // into the return leg — back on the near side.
  EXPECT_LT(shuttle->pose_at(Time::zero() + 20_s).position.x, mid.x);
  EXPECT_THROW(make_edge_ping_pong(d, 0.0, 30.0, 20_s),
               std::invalid_argument);
  EXPECT_THROW(make_edge_ping_pong(d, 5.0, -1.0, 20_s),
               std::invalid_argument);
}

TEST(Trajectories, DrivePassesAllCells) {
  const Deployment d = make_cell_row(DeploymentConfig{}, 3);
  const auto drive = make_drive(d, mph_to_mps(20.0));
  const Pose start = drive->pose_at(Time::zero());
  EXPECT_LT(start.position.x, 0.0);
  // Drive long enough: passes the last cell.
  const Pose end = drive->pose_at(Time::zero() + 60_s);
  EXPECT_GT(end.position.x, d.base_stations.back().pose().position.x);
}

}  // namespace
}  // namespace st::net
