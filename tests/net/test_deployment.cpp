#include "net/deployment.hpp"

#include <gtest/gtest.h>

#include "common/units.hpp"

namespace st::net {
namespace {

using namespace st::sim::literals;
using sim::Time;

TEST(Deployment, CellRowGeometry) {
  DeploymentConfig config;
  config.inter_site_m = 60.0;
  const Deployment d = make_cell_row(config, 3);
  ASSERT_EQ(d.base_stations.size(), 3U);
  EXPECT_EQ(d.base_stations[0].pose().position.x, 0.0);
  EXPECT_EQ(d.base_stations[1].pose().position.x, 60.0);
  EXPECT_EQ(d.base_stations[2].pose().position.x, 120.0);
  EXPECT_DOUBLE_EQ(d.boundary_x(), 30.0);
}

TEST(Deployment, CellIdsSequential) {
  const Deployment d = make_cell_row(DeploymentConfig{}, 3);
  for (CellId i = 0; i < 3; ++i) {
    EXPECT_EQ(d.base_stations[i].id(), i);
  }
}

TEST(Deployment, SsbBeamsMatchCodebook) {
  DeploymentConfig config;
  config.bs_beamwidth_deg = 45.0;  // -> 8 beams
  const Deployment d = make_cell_row(config, 2);
  for (const auto& bs : d.base_stations) {
    EXPECT_EQ(bs.schedule().config().ssb_beams, bs.codebook().size());
    EXPECT_EQ(bs.codebook().size(), 8U);
  }
}

TEST(Deployment, SchedulesAreStaggered) {
  DeploymentConfig config;
  config.schedule_stagger = 7_ms;
  const Deployment d = make_cell_row(config, 3);
  EXPECT_EQ(d.base_stations[0].schedule().offset(), sim::Duration{});
  EXPECT_EQ(d.base_stations[1].schedule().offset(), 7_ms);
  EXPECT_EQ(d.base_stations[2].schedule().offset(), 14_ms);
}

TEST(Deployment, InvalidConfigThrows) {
  EXPECT_THROW(make_cell_row(DeploymentConfig{}, 0), std::invalid_argument);
  DeploymentConfig bad;
  bad.inter_site_m = 0.0;
  EXPECT_THROW(make_cell_row(bad, 2), std::invalid_argument);
  bad = DeploymentConfig{};
  bad.corridor_offset_m = -1.0;
  EXPECT_THROW(make_cell_row(bad, 2), std::invalid_argument);
}

TEST(Trajectories, EdgeWalkCrossesBoundary) {
  const Deployment d = make_cell_row(DeploymentConfig{}, 2);
  const auto walk = make_edge_walk(d, 1.4, 30_s, 1);
  const Pose start = walk->pose_at(Time::zero());
  EXPECT_LT(start.position.x, d.boundary_x());
  EXPECT_NEAR(start.position.y, d.config.corridor_offset_m, 0.1);
  const Pose end = walk->pose_at(Time::zero() + 30_s);
  EXPECT_GT(end.position.x, d.boundary_x());
  EXPECT_DOUBLE_EQ(walk->speed_at(Time::zero()), 1.4);
}

TEST(Trajectories, EdgeRotationSitsInOverlapRegion) {
  const Deployment d = make_cell_row(DeploymentConfig{}, 2);
  const auto rot = make_edge_rotation(d, 120.0);
  const Pose p = rot->pose_at(Time::zero() + 5_s);
  // On the serving side of the boundary, within the overlap region.
  EXPECT_LT(p.position.x, d.boundary_x());
  EXPECT_GT(p.position.x, d.boundary_x() - 15.0);
  EXPECT_DOUBLE_EQ(p.position.y, d.config.corridor_offset_m);
  EXPECT_DOUBLE_EQ(rot->speed_at(Time::zero()), 0.0);
  // Rotates a full turn every 3 s at 120 deg/s.
  EXPECT_NE(rot->pose_at(Time::zero() + 1_s).orientation.yaw(),
            rot->pose_at(Time::zero()).orientation.yaw());
}

TEST(Trajectories, DrivePassesAllCells) {
  const Deployment d = make_cell_row(DeploymentConfig{}, 3);
  const auto drive = make_drive(d, mph_to_mps(20.0));
  const Pose start = drive->pose_at(Time::zero());
  EXPECT_LT(start.position.x, 0.0);
  // Drive long enough: passes the last cell.
  const Pose end = drive->pose_at(Time::zero() + 60_s);
  EXPECT_GT(end.position.x, d.base_stations.back().pose().position.x);
}

}  // namespace
}  // namespace st::net
