// Shared builders for net/core tests: a compact two-cell world with
// predictable physics (clean channel unless a test opts into impairments).
#pragma once

#include <memory>

#include "mobility/model.hpp"
#include "mobility/walk.hpp"
#include "net/deployment.hpp"
#include "net/environment.hpp"
#include "phy/pathloss.hpp"

namespace st::test {

/// Channel with no randomness: Friis only. Protocol logic tests use this
/// so expected RSS values are hand-computable.
inline phy::ChannelConfig clean_channel() {
  phy::ChannelConfig c;
  c.pathloss.model = phy::PathLossModel::kFreeSpace;
  c.pathloss.carrier_hz = kDefaultCarrierHz;
  c.pathloss.oxygen_db_per_m = 0.0;
  c.shadowing.sigma_db = 0.0;
  c.blockage.rate_per_s = 0.0;
  c.multipath.reflector_count = 0;
  return c;
}

inline net::EnvironmentConfig clean_environment(std::uint64_t seed = 1) {
  net::EnvironmentConfig e;
  e.channel = clean_channel();
  e.measurement.sigma_db = 0.0;
  // A steep detector makes success draws effectively deterministic around
  // the threshold, so protocol tests are not flaky.
  e.link.detection_slope_per_db = 20.0;
  e.seed = seed;
  return e;
}

/// Mobile standing still at `position`, facing +x.
inline std::shared_ptr<const mobility::MobilityModel> standing_at(
    Vec3 position) {
  Pose pose;
  pose.position = position;
  return std::make_shared<mobility::Stationary>(pose);
}

/// Two cells 60 m apart with the UE-facing defaults.
inline net::Deployment two_cells() {
  net::DeploymentConfig config;
  return net::make_cell_row(config, 2);
}

inline net::RadioEnvironment make_two_cell_env(
    std::shared_ptr<const mobility::MobilityModel> ue,
    double ue_beamwidth_deg = 20.0, std::uint64_t seed = 1) {
  net::Deployment d = two_cells();
  return net::RadioEnvironment(
      clean_environment(seed), std::move(d.base_stations), std::move(ue),
      ue_beamwidth_deg <= 0.0
          ? phy::Codebook::omni()
          : phy::Codebook::from_beamwidth_deg(ue_beamwidth_deg));
}

}  // namespace st::test
