#include "net/cell_search.hpp"

#include <gtest/gtest.h>

#include <optional>

#include "net/test_helpers.hpp"
#include "sim/simulator.hpp"

namespace st::net {
namespace {

using namespace st::sim::literals;
using sim::Time;

struct SearchWorld {
  explicit SearchWorld(Vec3 ue_position, double ue_beamwidth = 20.0,
                       std::uint64_t seed = 1)
      : env(test::make_two_cell_env(test::standing_at(ue_position),
                                    ue_beamwidth, seed)) {}

  sim::Simulator sim;
  RadioEnvironment env;
  std::optional<SearchOutcome> outcome;

  void run_search(std::vector<CellId> candidates, CellSearchConfig config = {},
                  CellSearch::BusyPredicate busy = {}) {
    CellSearch search(sim, env, std::move(candidates), config, std::move(busy));
    search.start([this](const SearchOutcome& o) { outcome = o; });
    sim.run_until(Time::zero() + 5000_ms);
  }
};

TEST(CellSearch, FindsStrongNeighbour) {
  // UE close to cell 1, searching for it: must succeed in one dwell or two.
  SearchWorld world({55.0, 10.0, 0.0});
  world.run_search({1});
  ASSERT_TRUE(world.outcome.has_value());
  EXPECT_TRUE(world.outcome->found);
  EXPECT_EQ(world.outcome->cell, 1U);
  EXPECT_GT(world.outcome->detections, 0U);
  EXPECT_LE(world.outcome->latency, 1280_ms);
}

TEST(CellSearch, FoundBeamPairIsReasonable) {
  SearchWorld world({55.0, 10.0, 0.0});
  world.run_search({1});
  ASSERT_TRUE(world.outcome->found);
  // The reported pair must give a healthy true SNR (it was detected).
  const double snr = world.env.true_dl_snr_db(
      1, world.outcome->tx_beam, world.outcome->rx_beam, Time::zero());
  EXPECT_GT(snr, world.env.link_budget().config().detection_threshold_snr_db);
}

TEST(CellSearch, ReportsFailureWhenNothingDetectable) {
  // Omni UE, very far cell: nothing to find inside the budget.
  SearchWorld world({-250.0, 10.0, 0.0}, /*ue_beamwidth=*/0.0);
  CellSearchConfig config;
  config.budget = 200_ms;
  world.run_search({1}, config);
  ASSERT_TRUE(world.outcome.has_value());
  EXPECT_FALSE(world.outcome->found);
  EXPECT_GE(world.outcome->dwells_used, 1U);
  EXPECT_LE(world.outcome->latency, 220_ms);
}

TEST(CellSearch, LatencyQuantisedToDwells) {
  SearchWorld world({55.0, 10.0, 0.0});
  world.run_search({1});
  ASSERT_TRUE(world.outcome->found);
  const auto dwell_ns = (20_ms).ns();
  EXPECT_EQ(world.outcome->latency.ns() % dwell_ns, 0);
  EXPECT_EQ(world.outcome->latency.ns() / dwell_ns,
            world.outcome->dwells_used);
}

TEST(CellSearch, StartBeamHintSpeedsDiscovery) {
  // Starting on the correct beam finds the cell in the first dwell;
  // starting opposite takes more dwells. The mobile sits far enough out
  // that receive-sidelobe detections are below the threshold.
  const Vec3 ue_pos{40.0, 10.0, 0.0};
  const auto direct_az = [&] {
    Pose p;
    p.position = ue_pos;
    return p.azimuth_to({60.0, 0.0, 0.0});
  }();

  SearchWorld aligned(ue_pos);
  const phy::BeamId good =
      aligned.env.ue_codebook().best_beam_for(direct_az);
  CellSearchConfig config;
  config.start_rx_beam = good;
  aligned.run_search({1}, config);
  ASSERT_TRUE(aligned.outcome->found);
  EXPECT_EQ(aligned.outcome->dwells_used, 1U);

  SearchWorld misaligned(ue_pos);
  config.start_rx_beam =
      (good + 9) % static_cast<phy::BeamId>(misaligned.env.ue_codebook().size());
  misaligned.run_search({1}, config);
  ASSERT_TRUE(misaligned.outcome->found);
  EXPECT_GT(misaligned.outcome->dwells_used, 1U);
}

TEST(CellSearch, SearchesMultipleCandidates) {
  // Standing between the cells: either may be found, and the winner must
  // be one of the candidates.
  SearchWorld world({30.0, 10.0, 0.0});
  world.run_search({0, 1});
  ASSERT_TRUE(world.outcome->found);
  EXPECT_TRUE(world.outcome->cell == 0U || world.outcome->cell == 1U);
}

TEST(CellSearch, BusyPredicateBlocksObservations) {
  // A predicate that is always busy starves the search completely.
  SearchWorld world({55.0, 10.0, 0.0});
  CellSearchConfig config;
  config.budget = 100_ms;
  world.run_search({1}, config, [](sim::Time) { return true; });
  ASSERT_TRUE(world.outcome.has_value());
  EXPECT_FALSE(world.outcome->found);
}

TEST(CellSearch, AbortSuppressesCallback) {
  SearchWorld world({55.0, 10.0, 0.0});
  CellSearch search(world.sim, world.env, {1}, CellSearchConfig{});
  bool fired = false;
  search.start([&](const SearchOutcome&) { fired = true; });
  EXPECT_TRUE(search.running());
  search.abort();
  EXPECT_FALSE(search.running());
  world.sim.run_until(Time::zero() + 2000_ms);
  EXPECT_FALSE(fired);
}

TEST(CellSearch, RestartAfterCompletionWorks) {
  SearchWorld world({55.0, 10.0, 0.0});
  CellSearch search(world.sim, world.env, {1}, CellSearchConfig{});
  int completions = 0;
  search.start([&](const SearchOutcome&) { ++completions; });
  world.sim.run_until(Time::zero() + 2000_ms);
  EXPECT_EQ(completions, 1);
  search.start([&](const SearchOutcome&) { ++completions; });
  world.sim.run_until(Time::zero() + 4000_ms);
  EXPECT_EQ(completions, 2);
}

TEST(CellSearch, InvalidUsageThrows) {
  SearchWorld world({55.0, 10.0, 0.0});
  EXPECT_THROW(CellSearch(world.sim, world.env, {}, CellSearchConfig{}),
               std::invalid_argument);
  CellSearchConfig bad;
  bad.dwell = sim::Duration{};
  EXPECT_THROW(CellSearch(world.sim, world.env, {1}, bad),
               std::invalid_argument);

  CellSearch search(world.sim, world.env, {1}, CellSearchConfig{});
  EXPECT_THROW(search.start(nullptr), std::invalid_argument);
  search.start([](const SearchOutcome&) {});
  EXPECT_THROW(search.start([](const SearchOutcome&) {}), std::logic_error);
}

TEST(CellSearch, BudgetCapsNumberOfDwells) {
  SearchWorld world({-250.0, 10.0, 0.0});  // hopeless
  CellSearchConfig config;
  config.budget = 205_ms;  // room for 10 dwells of 20 ms
  world.run_search({1}, config);
  ASSERT_TRUE(world.outcome.has_value());
  EXPECT_FALSE(world.outcome->found);
  EXPECT_EQ(world.outcome->dwells_used, 10U);
}

}  // namespace
}  // namespace st::net
