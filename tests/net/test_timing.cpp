#include "net/timing.hpp"

#include <gtest/gtest.h>

namespace st::net {
namespace {

using namespace st::sim::literals;
using sim::Duration;
using sim::Time;

FrameConfig small_frame() {
  FrameConfig c;
  c.slot = 125_us;
  c.ssb_period = 20_ms;
  c.ssb_beams = 8;
  c.rach_period = 10_ms;
  c.rar_window = 5_ms;
  return c;
}

TEST(FrameSchedule, BurstDuration) {
  const FrameSchedule s(small_frame(), Duration{});
  EXPECT_EQ(s.burst_duration(), 8 * 125_us);
}

TEST(FrameSchedule, SsbAtInsideBurst) {
  const FrameSchedule s(small_frame(), Duration{});
  // Slot 3 of burst 0 covers [375, 500) us.
  const auto slot = s.ssb_at(Time::zero() + 400_us);
  ASSERT_TRUE(slot.has_value());
  EXPECT_EQ(slot->tx_beam, 3U);
  EXPECT_EQ(slot->start, Time::zero() + 375_us);
  EXPECT_EQ(slot->burst_index, 0U);
}

TEST(FrameSchedule, SsbAtOutsideBurstIsEmpty) {
  const FrameSchedule s(small_frame(), Duration{});
  EXPECT_FALSE(s.ssb_at(Time::zero() + 5_ms).has_value());
  EXPECT_FALSE(s.ssb_at(Time::zero() + 19_ms).has_value());
}

TEST(FrameSchedule, SsbAtSecondBurst) {
  const FrameSchedule s(small_frame(), Duration{});
  const auto slot = s.ssb_at(Time::zero() + 20_ms + 130_us);
  ASSERT_TRUE(slot.has_value());
  EXPECT_EQ(slot->tx_beam, 1U);
  EXPECT_EQ(slot->burst_index, 1U);
}

TEST(FrameSchedule, OffsetShiftsEverything) {
  const FrameSchedule s(small_frame(), 7_ms);
  EXPECT_FALSE(s.ssb_at(Time::zero() + 1_ms).has_value());
  const auto slot = s.ssb_at(Time::zero() + 7_ms + 200_us);
  ASSERT_TRUE(slot.has_value());
  EXPECT_EQ(slot->tx_beam, 1U);
  EXPECT_EQ(s.next_burst_start(Time::zero()), Time::zero() + 7_ms);
}

TEST(FrameSchedule, OffsetNormalisedModuloPeriod) {
  const FrameSchedule a(small_frame(), 7_ms);
  const FrameSchedule b(small_frame(), 27_ms);
  EXPECT_EQ(a.offset(), b.offset());
  const FrameSchedule c(small_frame(), Duration::milliseconds(-13));
  EXPECT_EQ(c.offset(), 7_ms);
}

TEST(FrameSchedule, NextSsbAdvancesThroughBurst) {
  const FrameSchedule s(small_frame(), Duration{});
  SsbSlot slot = s.next_ssb(Time::zero());
  EXPECT_EQ(slot.tx_beam, 0U);
  slot = s.next_ssb(slot.start + 1_ns);
  EXPECT_EQ(slot.tx_beam, 1U);
  // After the last slot of the burst, the next is beam 0 of burst 1.
  slot = s.next_ssb(Time::zero() + 8 * 125_us);
  EXPECT_EQ(slot.tx_beam, 0U);
  EXPECT_EQ(slot.burst_index, 1U);
}

TEST(FrameSchedule, NextSsbAtExactSlotStartReturnsIt) {
  const FrameSchedule s(small_frame(), Duration{});
  const SsbSlot slot = s.next_ssb(Time::zero() + 250_us);
  EXPECT_EQ(slot.start, Time::zero() + 250_us);
  EXPECT_EQ(slot.tx_beam, 2U);
}

TEST(FrameSchedule, NextSsbForBeamLandsOnBeamSlot) {
  const FrameSchedule s(small_frame(), 3_ms);
  for (phy::BeamId beam = 0; beam < 8; ++beam) {
    const SsbSlot slot = s.next_ssb_for_beam(Time::zero() + 50_ms, beam);
    EXPECT_EQ(slot.tx_beam, beam);
    EXPECT_GE(slot.start, Time::zero() + 50_ms);
    // It really is that beam's slot position within a burst.
    const auto check = s.ssb_at(slot.start);
    ASSERT_TRUE(check.has_value());
    EXPECT_EQ(check->tx_beam, beam);
  }
}

TEST(FrameSchedule, NextSsbForBeamIsEarliest) {
  const FrameSchedule s(small_frame(), Duration{});
  // Just after beam 2's slot started, the next beam-2 slot is one period on.
  const SsbSlot slot = s.next_ssb_for_beam(Time::zero() + 250_us + 1_ns, 2);
  EXPECT_EQ(slot.start, Time::zero() + 20_ms + 250_us);
}

TEST(FrameSchedule, NextBurstStartRollsOver) {
  const FrameSchedule s(small_frame(), Duration{});
  EXPECT_EQ(s.next_burst_start(Time::zero()), Time::zero());
  EXPECT_EQ(s.next_burst_start(Time::zero() + 1_ns), Time::zero() + 20_ms);
  EXPECT_EQ(s.next_burst_start(Time::zero() + 39_ms), Time::zero() + 40_ms);
}

TEST(FrameSchedule, RachOccasionMapsToBeam) {
  const FrameSchedule s(small_frame(), Duration{});
  // Occasions every 10 ms cycle through beams 0..7; beam b first occurs at
  // b * 10 ms.
  for (phy::BeamId beam = 0; beam < 8; ++beam) {
    const Time occasion = s.next_rach_occasion(Time::zero(), beam);
    EXPECT_EQ(occasion, Time::zero() + static_cast<std::int64_t>(beam) * 10_ms);
  }
}

TEST(FrameSchedule, RachOccasionCyclePeriod) {
  const FrameSchedule s(small_frame(), Duration{});
  const Time first = s.next_rach_occasion(Time::zero(), 3);
  const Time second = s.next_rach_occasion(first + 1_ns, 3);
  EXPECT_EQ(second - first, 8 * 10_ms);  // ssb_beams * rach_period
}

TEST(FrameSchedule, RachOccasionRespectsOffset) {
  const FrameSchedule s(small_frame(), 7_ms);
  const Time occasion = s.next_rach_occasion(Time::zero(), 0);
  EXPECT_EQ(occasion, Time::zero() + 7_ms);
}

TEST(FrameSchedule, BeamIndexWrapsModuloSsbBeams) {
  const FrameSchedule s(small_frame(), Duration{});
  const SsbSlot a = s.next_ssb_for_beam(Time::zero(), 2);
  const SsbSlot b = s.next_ssb_for_beam(Time::zero(), 10);  // 10 % 8 == 2
  EXPECT_EQ(a.start, b.start);
}

TEST(FrameSchedule, InvalidConfigThrows) {
  FrameConfig bad = small_frame();
  bad.ssb_beams = 0;
  EXPECT_THROW(FrameSchedule(bad, Duration{}), std::invalid_argument);

  bad = small_frame();
  bad.slot = Duration{};
  EXPECT_THROW(FrameSchedule(bad, Duration{}), std::invalid_argument);

  bad = small_frame();
  bad.ssb_beams = 200;  // 200 * 125 us = 25 ms > 20 ms period
  EXPECT_THROW(FrameSchedule(bad, Duration{}), std::invalid_argument);
}

/// Property: for any offset, consecutive next_ssb() calls enumerate every
/// (burst, beam) slot exactly once in order.
class ScheduleEnumeration : public ::testing::TestWithParam<int> {};

TEST_P(ScheduleEnumeration, NextSsbEnumeratesAllSlots) {
  const FrameSchedule s(small_frame(),
                        Duration::milliseconds(GetParam()));
  SsbSlot slot = s.next_ssb(Time::zero());
  for (int i = 0; i < 50; ++i) {
    const SsbSlot next = s.next_ssb(slot.start + 1_ns);
    EXPECT_GT(next.start, slot.start);
    const auto expected_beam = (slot.tx_beam + 1) % 8;
    EXPECT_EQ(next.tx_beam, expected_beam);
    if (expected_beam == 0) {
      EXPECT_EQ(next.burst_index, slot.burst_index + 1);
    } else {
      EXPECT_EQ(next.burst_index, slot.burst_index);
    }
    slot = next;
  }
}

INSTANTIATE_TEST_SUITE_P(Offsets, ScheduleEnumeration,
                         ::testing::Values(0, 3, 7, 13, 19));

}  // namespace
}  // namespace st::net
