#include "net/link_monitor.hpp"

#include <gtest/gtest.h>

#include "mobility/walk.hpp"
#include "net/test_helpers.hpp"
#include "sim/simulator.hpp"

namespace st::net {
namespace {

using namespace st::sim::literals;
using sim::Time;

TEST(LinkMonitor, HealthyLinkNeverFails) {
  sim::Simulator sim;
  auto env = test::make_two_cell_env(test::standing_at({5.0, 10.0, 0.0}));
  const auto best = env.ground_truth_best_pair(0, Time::zero());
  env.bs_mutable(0).set_serving_tx_beam(best.tx_beam);

  LinkMonitor monitor(sim, env, LinkMonitorConfig{});
  bool failed = false;
  monitor.start(0, [&] { return best.rx_beam; }, [&] { failed = true; });
  sim.run_until(Time::zero() + 2000_ms);
  EXPECT_FALSE(failed);
  EXPECT_TRUE(monitor.monitoring());
  EXPECT_GT(monitor.last_snr_db(),
            env.link_budget().config().data_threshold_snr_db);
  monitor.stop();
  EXPECT_FALSE(monitor.monitoring());
}

TEST(LinkMonitor, MisalignedBeamFailsAfterWindow) {
  sim::Simulator sim;
  auto env = test::make_two_cell_env(test::standing_at({5.0, 10.0, 0.0}));
  const auto best = env.ground_truth_best_pair(0, Time::zero());
  env.bs_mutable(0).set_serving_tx_beam(best.tx_beam);
  const auto n = static_cast<phy::BeamId>(env.ue_codebook().size());
  const phy::BeamId wrong = (best.rx_beam + n / 2) % n;

  LinkMonitorConfig config;
  config.failure_window = 50_ms;
  LinkMonitor monitor(sim, env, config);
  Time failed_at{};
  bool failed = false;
  monitor.start(0, [&] { return wrong; }, [&] {
    failed = true;
    failed_at = sim.now();
  });
  sim.run_until(Time::zero() + 1000_ms);
  ASSERT_TRUE(failed);
  EXPECT_FALSE(monitor.monitoring());  // stops after declaring failure
  // Below threshold from t=0: declaration at the window boundary.
  EXPECT_EQ(failed_at, Time::zero() + 50_ms);
}

TEST(LinkMonitor, WalkingOutOfCoverageEventuallyFails) {
  sim::Simulator sim;
  mobility::WalkConfig walk;
  walk.start = {10.0, 10.0, 0.0};
  walk.speed_mps = 20.0;  // fast-forward out of the cell
  walk.sway_amplitude_m = 0.0;
  walk.yaw_jitter_stddev_rad = 0.0;
  auto ue = std::make_shared<mobility::LinearWalk>(walk, 60_s, 1);
  Deployment d = test::two_cells();
  RadioEnvironment env(test::clean_environment(), std::move(d.base_stations),
                       ue, phy::Codebook::from_beamwidth_deg(20.0));
  const auto best = env.ground_truth_best_pair(0, Time::zero());
  env.bs_mutable(0).set_serving_tx_beam(best.tx_beam);

  LinkMonitor monitor(sim, env, LinkMonitorConfig{});
  bool failed = false;
  // Beam frozen at the initial best: misaligns as the mobile recedes.
  monitor.start(0, [&] { return best.rx_beam; }, [&] { failed = true; });
  sim.run_until(Time::zero() + 30'000_ms);
  EXPECT_TRUE(failed);
}

TEST(LinkMonitor, InOutageIsTransientState) {
  // Flip the serving TX beam to something hopeless mid-run, then restore
  // before the window expires: outage seen, no failure declared.
  sim::Simulator sim;
  auto env = test::make_two_cell_env(test::standing_at({5.0, 10.0, 0.0}));
  const auto best = env.ground_truth_best_pair(0, Time::zero());
  env.bs_mutable(0).set_serving_tx_beam(best.tx_beam);
  const auto n_tx = static_cast<phy::BeamId>(env.bs(0).codebook().size());
  const phy::BeamId bad_tx = (best.tx_beam + n_tx / 2) % n_tx;

  LinkMonitorConfig config;
  config.failure_window = 100_ms;
  LinkMonitor monitor(sim, env, config);
  bool failed = false;
  bool saw_outage = false;
  monitor.start(0, [&] { return best.rx_beam; }, [&] { failed = true; });

  sim.schedule_at(Time::zero() + 20_ms,
                  [&] { env.bs_mutable(0).set_serving_tx_beam(bad_tx); });
  sim.schedule_at(Time::zero() + 60_ms, [&] {
    saw_outage = monitor.in_outage();
    env.bs_mutable(0).set_serving_tx_beam(best.tx_beam);
  });
  sim.run_until(Time::zero() + 1000_ms);
  EXPECT_TRUE(saw_outage);
  EXPECT_FALSE(failed);
  EXPECT_FALSE(monitor.in_outage());
}

TEST(LinkMonitor, InvalidUsageThrows) {
  sim::Simulator sim;
  auto env = test::make_two_cell_env(test::standing_at({5.0, 10.0, 0.0}));
  LinkMonitorConfig bad;
  bad.check_period = sim::Duration{};
  EXPECT_THROW(LinkMonitor(sim, env, bad), std::invalid_argument);

  LinkMonitor monitor(sim, env, LinkMonitorConfig{});
  EXPECT_THROW(monitor.start(0, nullptr, [] {}), std::invalid_argument);
  EXPECT_THROW(monitor.start(0, [] { return phy::BeamId{0}; }, nullptr),
               std::invalid_argument);
  monitor.start(0, [] { return phy::BeamId{0}; }, [] {});
  EXPECT_THROW(monitor.start(0, [] { return phy::BeamId{0}; }, [] {}),
               std::logic_error);
  monitor.stop();
}

TEST(LinkMonitor, StopPreventsFutureFailure) {
  sim::Simulator sim;
  auto env = test::make_two_cell_env(test::standing_at({5.0, 10.0, 0.0}));
  const auto n = static_cast<phy::BeamId>(env.ue_codebook().size());
  const auto best = env.ground_truth_best_pair(0, Time::zero());
  const phy::BeamId wrong = (best.rx_beam + n / 2) % n;
  env.bs_mutable(0).set_serving_tx_beam(best.tx_beam);

  LinkMonitor monitor(sim, env, LinkMonitorConfig{});
  bool failed = false;
  monitor.start(0, [&] { return wrong; }, [&] { failed = true; });
  sim.schedule_at(Time::zero() + 10_ms, [&] { monitor.stop(); });
  sim.run_until(Time::zero() + 2000_ms);
  EXPECT_FALSE(failed);
}

}  // namespace
}  // namespace st::net
