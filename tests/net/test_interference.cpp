// Co-channel interference (SINR) tests: concurrent SSB transmissions of
// different cells degrade each other's detection — the reason real
// deployments (and our default DeploymentConfig) stagger neighbour SSB
// schedules in time.
#include <gtest/gtest.h>

#include "net/environment.hpp"
#include "net/test_helpers.hpp"

namespace st::net {
namespace {

using namespace st::sim::literals;
using sim::Duration;
using sim::Time;

/// Two cells with a chosen schedule offset between them; mobile midway.
RadioEnvironment env_with_stagger(sim::Duration stagger,
                                  bool interference = true,
                                  std::uint64_t seed = 1) {
  DeploymentConfig config;
  config.schedule_stagger = stagger;
  Deployment d = make_cell_row(config, 2);
  EnvironmentConfig env_config = test::clean_environment(seed);
  env_config.enable_interference = interference;
  // Flatten the detector so detection probabilities expose SINR shifts.
  env_config.link.detection_slope_per_db = 1.5;
  return RadioEnvironment(env_config, std::move(d.base_stations),
                          test::standing_at({30.0, 10.0, 0.0}),
                          phy::Codebook::from_beamwidth_deg(20.0));
}

TEST(Interference, NoneWhenOtherCellSilent) {
  auto env = env_with_stagger(7_ms);
  // Cell 1's burst starts at 7 ms; at t=5 ms only cell 0 transmits.
  const double i = env.interference_dbm(0, 0, Time::zero() + 5_ms);
  EXPECT_LT(i, -200.0);
}

TEST(Interference, PresentWhenSlotsOverlap) {
  auto env = env_with_stagger(Duration{});  // synchronised schedules
  // During the burst both cells transmit: interference on cell 0's SSB
  // comes from cell 1 and is far above the "none" floor.
  const double i = env.interference_dbm(0, 9, Time::zero() + 100_us);
  EXPECT_GT(i, -100.0);
}

TEST(Interference, StrongestTowardsInterferer) {
  auto env = env_with_stagger(Duration{});
  const Time t = Time::zero() + 100_us;
  // The mobile is midway; a beam pointing at cell 1 collects more of
  // cell 1's interference than a beam pointing at cell 0.
  Pose p;
  p.position = {30.0, 10.0, 0.0};
  const auto towards_1 = env.ue_codebook().best_beam_for(
      p.azimuth_to({60.0, 0.0, 0.0}));
  const auto towards_0 =
      env.ue_codebook().best_beam_for(p.azimuth_to({0.0, 0.0, 0.0}));
  EXPECT_GT(env.interference_dbm(0, towards_1, t),
            env.interference_dbm(0, towards_0, t) + 6.0);
}

TEST(Interference, SynchronisedLoudInterfererBlocksDetection) {
  // Mechanism test with an unmissable interferer: a second cell at very
  // high TX power whose schedule either collides with the wanted cell's
  // (synchronised) or does not (staggered). Detection of the wanted SSB
  // must collapse only in the collision case.
  const auto build = [](sim::Duration cell1_offset) {
    FrameConfig frame;
    frame.ssb_beams = 8;
    std::vector<BaseStation> stations;
    Pose p0;
    p0.position = {0.0, 0.0, 0.0};
    stations.emplace_back(0, p0, phy::Codebook::from_beamwidth_deg(45.0),
                          13.0, FrameSchedule(frame, Duration{}));
    Pose p1;
    p1.position = {60.0, 0.0, 0.0};
    stations.emplace_back(1, p1, phy::Codebook::from_beamwidth_deg(45.0),
                          60.0,  // deliberately loud
                          FrameSchedule(frame, cell1_offset));
    EnvironmentConfig env_config = test::clean_environment(5);
    env_config.link.detection_slope_per_db = 20.0;
    return RadioEnvironment(env_config, std::move(stations),
                            test::standing_at({30.0, 10.0, 0.0}),
                            phy::Codebook::from_beamwidth_deg(20.0));
  };

  auto synced = build(Duration{});
  auto staggered = build(7_ms);
  const auto tx = synced.ground_truth_best_pair(0, Time::zero()).tx_beam;
  const auto rx = synced.ground_truth_best_pair(0, Time::zero()).rx_beam;
  const Time t = Time::zero() + static_cast<std::int64_t>(tx) * 125_us + 10_us;

  int det_synced = 0;
  int det_staggered = 0;
  for (int i = 0; i < 100; ++i) {
    det_synced += synced.observe_ssb(0, tx, rx, t).detected ? 1 : 0;
    det_staggered += staggered.observe_ssb(0, tx, rx, t).detected ? 1 : 0;
  }
  EXPECT_GT(det_staggered, 90);
  EXPECT_LT(det_synced, 10);
}

TEST(Interference, DisableFlagRestoresSnr) {
  auto with = env_with_stagger(Duration{}, true, 3);
  auto without = env_with_stagger(Duration{}, false, 3);
  const auto tx = with.ground_truth_best_pair(0, Time::zero()).tx_beam;
  const Time t =
      Time::zero() + static_cast<std::int64_t>(tx) * 125_us + 10_us;
  // With identical seeds, the no-interference environment detects at
  // least as often.
  int det_with = 0;
  int det_without = 0;
  for (int i = 0; i < 200; ++i) {
    det_with += with.observe_ssb(0, tx, 9, t).detected ? 1 : 0;
    det_without += without.observe_ssb(0, tx, 9, t).detected ? 1 : 0;
  }
  EXPECT_GE(det_without, det_with);
}

TEST(Interference, DefaultDeploymentStaggeringAvoidsCollisions) {
  // The shipped deployment staggers schedules by 7 ms with 1 ms bursts:
  // no instant has two cells transmitting SSBs simultaneously.
  Deployment d = make_cell_row(DeploymentConfig{}, 3);
  for (std::int64_t us = 0; us < 20'000; us += 25) {
    const Time t = Time::zero() + Duration::microseconds(us);
    int active = 0;
    for (const auto& bs : d.base_stations) {
      active += bs.schedule().ssb_at(t).has_value() ? 1 : 0;
    }
    EXPECT_LE(active, 1) << "collision at t=" << us << " us";
  }
}

}  // namespace
}  // namespace st::net
