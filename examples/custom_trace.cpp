// Bring-your-own-trace: run Silent Tracker on a recorded pose trajectory
// instead of a synthetic mobility model, assembling the pieces manually
// (deployment → environment → protocol) rather than via run_scenario().
//
//   ./custom_trace                # uses a built-in demo trace
//   ./custom_trace my_trace.csv   # t_s,x,y,z,yaw_deg rows
//
// The demo trace is a walk that pauses mid-corridor, turns to face the
// old cell for two seconds (a person checking their phone), then carries
// on — the kind of irregular motion no parametric model produces and the
// reason trace playback exists.
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>

#include "core/silent_tracker.hpp"
#include "mobility/trace.hpp"
#include "net/deployment.hpp"

namespace {

using namespace st;
using namespace st::sim::literals;

std::shared_ptr<const mobility::TracePlayback> demo_trace() {
  // Hand-authored: walk 10 s, pause + turn 3 s, walk on.
  std::vector<mobility::TraceSample> samples;
  const auto add = [&samples](double t_s, double x, double yaw_deg) {
    mobility::TraceSample s;
    s.t = sim::Time::from_ns(static_cast<std::int64_t>(t_s * 1e9));
    s.position = {x, 10.0, 0.0};
    s.yaw_rad = deg_to_rad(yaw_deg);
    samples.push_back(s);
  };
  add(0.0, 10.0, 0.0);
  add(10.0, 24.0, 0.0);    // 1.4 m/s walk
  add(11.0, 24.0, -90.0);  // stop, quarter-turn
  add(13.0, 24.0, -90.0);  // dwell
  add(14.0, 24.0, 0.0);    // turn back
  add(30.0, 46.4, 0.0);    // walk on across the boundary
  return std::make_shared<mobility::TracePlayback>(std::move(samples));
}

}  // namespace

int main(int argc, char** argv) {
  std::shared_ptr<const mobility::TracePlayback> trace;
  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::cerr << "custom_trace: cannot open " << argv[1] << '\n';
      return 1;
    }
    trace = std::make_shared<mobility::TracePlayback>(
        mobility::TracePlayback::from_csv(file));
    std::cout << "Loaded " << trace->sample_count() << " samples spanning "
              << sim::to_string(trace->end_time() - trace->start_time())
              << " from " << argv[1] << "\n\n";
  } else {
    trace = demo_trace();
    std::cout << "Using the built-in demo trace (walk, pause + quarter-turn, "
                 "walk on).\nExport your own with "
                 "st::mobility::trace_to_csv().\n\n";
  }

  // Assemble the world manually: two cells, the trace as the mobile.
  net::Deployment deployment = net::make_cell_row(net::DeploymentConfig{}, 2);
  net::EnvironmentConfig env_config;
  env_config.horizon = trace->end_time() - sim::Time::zero() +
                       sim::Duration::milliseconds(2000);
  env_config.seed = 4;
  net::RadioEnvironment env(env_config, std::move(deployment.base_stations),
                            trace, phy::Codebook::from_beamwidth_deg(20.0));

  sim::Simulator simulator;
  const auto initial = env.ground_truth_best_pair(0, sim::Time::zero());
  env.bs_mutable(0).set_serving_tx_beam(initial.tx_beam);

  core::SilentTracker tracker(simulator, env, core::SilentTrackerConfig{});
  sim::EventLog log;
  sim::CounterSet counters;
  tracker.set_recorders(&log, &counters);
  std::optional<net::HandoverRecord> handover;
  tracker.start(0, initial.rx_beam, initial.rx_power_dbm,
                [&](const net::HandoverRecord& r) { handover = r; });

  simulator.run_until(trace->end_time());

  std::cout << "--- protocol events along the trace ---\n";
  for (const auto& e : log.entries()) {
    const Pose pose = trace->pose_at(e.t);
    std::printf("  %9.1f ms  x=%5.1f yaw=%6.1f  %s\n", e.t.ms(),
                pose.position.x, rad_to_deg(pose.orientation.yaw()),
                e.message.c_str());
  }

  std::cout << "\n--- outcome ---\n";
  if (handover.has_value()) {
    std::cout << "  handover " << handover->from << " -> " << handover->to
              << ": "
              << (handover->type == net::HandoverType::kSoft ? "soft" : "hard")
              << (handover->success ? "" : " FAILED") << ", interruption "
              << sim::to_string(handover->interruption()) << '\n';
  } else {
    std::cout << "  no handover within the trace (state: "
              << core::to_string(tracker.state()) << ")\n";
  }
  return 0;
}
