// General scenario runner: every knob of the experiment harness on the
// command line, with CSV output options for plotting. This is the tool a
// downstream user points at their own parameter questions ("what if the
// SSB period were 10 ms?", "does 60-degree tracking survive 200 deg/s?").
//
// Usage:
//   scenario_cli [options]
//     --scenario walk|rotation|vehicular   (default walk)
//     --protocol tracker|reactive          (default tracker)
//     --beamwidth <deg>                    (default 20; 0 = omni)
//     --threshold <dB>                     (default 3)
//     --cells <n>                          (default 2; vehicular wants 3)
//     --duration <s>                       (default 20)
//     --speed <m/s>                        (walk speed, default 1.4)
//     --rotation-rate <deg/s>              (default 120)
//     --vehicle-mph <mph>                  (default 20)
//     --ssb-period <ms>                    (default 20)
//     --seed <n>                           (default 1)
//     --csv rss|gap|snr                    (print a series as CSV and exit)
//     --quiet                              (summary only, no event log)
#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "common/table.hpp"
#include "core/scenario.hpp"
#include "obs/export.hpp"

namespace {

using namespace st;
using namespace st::sim::literals;

[[noreturn]] void usage_error(const std::string& message) {
  std::cerr << "scenario_cli: " << message
            << " (run with --help for options)\n";
  std::exit(2);
}

void print_help() {
  std::cout <<
      R"(scenario_cli — run one Silent Tracker experiment with custom knobs.

  --scenario walk|rotation|vehicular   mobility scenario        [walk]
  --protocol tracker|reactive          protocol under test      [tracker]
  --beamwidth <deg>                    mobile codebook; 0=omni  [20]
  --ula                                physical ULA patterns (sidelobes)
  --threshold <dB>                     beam-switch drop rule    [3]
  --cells <n>                          base stations in a row   [2]
  --duration <s>                       simulated time           [20]
  --speed <m/s>                        walk speed               [1.4]
  --rotation-rate <deg/s>              rotation rate            [120]
  --vehicle-mph <mph>                  vehicle speed            [20]
  --ssb-period <ms>                    SSB burst periodicity    [20]
  --seed <n>                           RNG root seed            [1]
  --csv rss|gap|snr                    dump a series as CSV
  --quiet                              summary only
  --trace-out <path>                   write Chrome/Perfetto trace.json
  --report-out <path>                  write machine-readable RunReport JSON
)";
}

}  // namespace

int main(int argc, char** argv) {
  core::ScenarioSpec spec;
  spec.duration = 20'000_ms;
  core::UeProfile& ue = spec.ues.front();
  std::string csv;
  std::string trace_out;
  std::string report_out;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&]() -> std::string {
      if (i + 1 >= argc) {
        usage_error("missing value for " + arg);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      print_help();
      return 0;
    } else if (arg == "--scenario") {
      const std::string v = next_value();
      if (v == "walk") {
        ue.mobility = core::MobilityScenario::kHumanWalk;
      } else if (v == "rotation") {
        ue.mobility = core::MobilityScenario::kRotation;
        // The paper's rotation runs sit at a tighter 40 m cell edge (see
        // preset::paper_rotation()).
        spec.deployment.inter_site_m =
            std::min(spec.deployment.inter_site_m, 40.0);
      } else if (v == "vehicular") {
        ue.mobility = core::MobilityScenario::kVehicular;
        spec.n_cells = 3;
      } else {
        usage_error("unknown scenario '" + v + "'");
      }
    } else if (arg == "--protocol") {
      const std::string v = next_value();
      if (v == "tracker") {
        ue.protocol = core::ProtocolKind::kSilentTracker;
      } else if (v == "reactive") {
        ue.protocol = core::ProtocolKind::kReactive;
      } else {
        usage_error("unknown protocol '" + v + "'");
      }
    } else if (arg == "--beamwidth") {
      ue.ue_beamwidth_deg = std::strtod(next_value().c_str(), nullptr);
    } else if (arg == "--ula") {
      ue.ue_ula_codebook = true;
    } else if (arg == "--threshold") {
      const double thr = std::strtod(next_value().c_str(), nullptr);
      ue.tracker.neighbour_tracker.drop_threshold_db = thr;
      ue.tracker.beamsurfer.tracker.drop_threshold_db = thr;
      ue.reactive.beamsurfer.tracker.drop_threshold_db = thr;
    } else if (arg == "--cells") {
      spec.n_cells =
          static_cast<unsigned>(std::strtoul(next_value().c_str(), nullptr, 10));
    } else if (arg == "--duration") {
      spec.duration = sim::Duration::seconds_of(
          std::strtod(next_value().c_str(), nullptr));
    } else if (arg == "--speed") {
      ue.walk_speed_mps = std::strtod(next_value().c_str(), nullptr);
    } else if (arg == "--rotation-rate") {
      ue.rotation_rate_deg_s = std::strtod(next_value().c_str(), nullptr);
    } else if (arg == "--vehicle-mph") {
      ue.vehicle_speed_mph = std::strtod(next_value().c_str(), nullptr);
    } else if (arg == "--ssb-period") {
      spec.deployment.frame.ssb_period = sim::Duration::milliseconds(
          std::strtol(next_value().c_str(), nullptr, 10));
    } else if (arg == "--seed") {
      spec.seed = std::strtoull(next_value().c_str(), nullptr, 10);
    } else if (arg == "--csv") {
      csv = next_value();
    } else if (arg == "--trace-out") {
      trace_out = next_value();
    } else if (arg == "--report-out") {
      report_out = next_value();
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      usage_error("unknown option '" + arg + "'");
    }
  }

  spec.collect_trace = !trace_out.empty() || !report_out.empty();

  const core::ScenarioResult result = core::run_scenario(spec);

  if (!trace_out.empty() &&
      !obs::write_chrome_trace_file(*result.trace, trace_out)) {
    std::cerr << "scenario_cli: failed to write trace to " << trace_out
              << "\n";
    return 1;
  }
  if (!report_out.empty()) {
    const obs::RunReport report = core::build_run_report(spec, result);
    if (!obs::write_text_file(report_out, report.to_json())) {
      std::cerr << "scenario_cli: failed to write report to " << report_out
                << "\n";
      return 1;
    }
  }

  if (csv == "rss") {
    std::cout << "t_ms,tracked_rss_dbm\n"
              << result.neighbour_tracked_rss_dbm.csv();
    return 0;
  }
  if (csv == "gap") {
    std::cout << "t_ms,alignment_gap_db\n" << result.alignment_gap_db.csv();
    return 0;
  }
  if (csv == "snr") {
    std::cout << "t_ms,serving_snr_db\n" << result.serving_snr_db.csv();
    return 0;
  }
  if (!csv.empty()) {
    usage_error("unknown series '" + csv + "' (rss|gap|snr)");
  }

  if (!quiet) {
    for (const auto& e : result.log.entries()) {
      std::cout << st::sim::to_string(e.t) << "  [" << e.component << "] "
                << e.message << '\n';
    }
    std::cout << '\n';
  }

  std::cout << "scenario=" << core::to_string(ue.mobility)
            << " protocol=" << core::to_string(ue.protocol)
            << " beamwidth=" << ue.ue_beamwidth_deg
            << " seed=" << spec.seed << '\n'
            << "handovers=" << result.handovers.size()
            << " successful=" << result.successful_handovers()
            << " soft=" << result.soft_handovers() << '\n'
            << "aligned_until_first_handover="
            << format_double(100.0 * result.alignment_until_first_handover(),
                             1)
            << "%\n";
  for (const auto& [name, value] : result.counters.all()) {
    std::cout << "counter " << name << "=" << value << '\n';
  }
  return 0;
}
