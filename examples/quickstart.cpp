// Quickstart: the smallest complete Silent Tracker run.
//
// Two 60 GHz cells, a user walking across the boundary at 1.4 m/s with a
// 20° receive codebook, Silent Tracker managing the transition. Prints
// the protocol's event timeline and a summary of the handover.
//
//   ./quickstart [seed]
#include <cstdlib>
#include <iostream>

#include "core/scenario.hpp"

int main(int argc, char** argv) {
  const st::core::ScenarioSpec spec =
      st::core::SpecBuilder(st::core::preset::paper_walk())
          .duration(st::sim::Duration::milliseconds(20'000))
          .seed(argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42)
          .build();
  const st::core::UeProfile& ue = spec.ues.front();

  std::cout << "Silent Tracker quickstart\n"
            << "  scenario : human walk, " << ue.walk_speed_mps
            << " m/s across the cell boundary\n"
            << "  codebook : " << ue.ue_beamwidth_deg
            << " deg mobile receive beams\n"
            << "  seed     : " << spec.seed << "\n\n";

  const st::core::ScenarioResult result = st::core::run_scenario(spec);

  std::cout << "--- protocol timeline ---\n";
  for (const auto& entry : result.log.entries()) {
    std::cout << "  " << st::sim::to_string(entry.t) << "  ["
              << entry.component << "] " << entry.message << '\n';
  }

  std::cout << "\n--- handovers ---\n";
  for (const auto& h : result.handovers) {
    std::cout << "  cell " << h.from << " -> " << h.to << "  type="
              << (h.type == st::net::HandoverType::kSoft ? "soft" : "hard")
              << "  success=" << (h.success ? "yes" : "no")
              << "  interruption=" << st::sim::to_string(h.interruption())
              << "  rach_attempts=" << h.rach_attempts << "  aligned="
              << (h.beam_aligned_at_completion ? "yes" : "no") << '\n';
  }

  std::cout << "\n--- tracking quality ---\n"
            << "  samples while tracking : "
            << result.alignment_gap_db.size() << '\n'
            << "  aligned (within 3 dB)  : "
            << 100.0 * result.tracking_alignment_fraction() << " %\n";

  std::cout << "\n--- counters ---\n";
  for (const auto& [name, value] : result.counters.all()) {
    std::cout << "  " << name << " = " << value << '\n';
  }
  return 0;
}
