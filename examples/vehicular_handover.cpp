// Vehicular scenario: a 20 mph drive past a row of three roadside cells,
// with Silent Tracker chaining soft handovers cell to cell. Prints each
// handover as the drive progresses and closing statistics — the mobility
// case where handover *frequency* matters (the paper cites [8]: mm-wave
// handoff rates at vehicular speeds are high because cells are small).
//
//   ./vehicular_handover [seed]
#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "core/scenario.hpp"

int main(int argc, char** argv) {
  using namespace st;
  using namespace st::sim::literals;

  const core::ScenarioSpec spec =
      core::SpecBuilder(core::preset::paper_vehicular())
          .duration(20'000_ms)
          .collect_trace(true)  // feeds the run-report summary below
          .seed(argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 11)
          .build();
  const core::UeProfile& ue = spec.ues.front();

  const double speed = mph_to_mps(ue.vehicle_speed_mph);
  std::cout << "Vehicular drive: 3 cells at x = 0, 60, 120 m; corridor at "
               "y = 10 m;\nspeed "
            << ue.vehicle_speed_mph << " mph (" << format_double(speed, 2)
            << " m/s), " << spec.duration.seconds() << " s of driving.\n\n";

  const core::ScenarioResult result = core::run_scenario(spec);

  std::cout << "--- handovers along the road ---\n";
  for (const auto& h : result.handovers) {
    const double x = -24.0 + speed * h.completed.seconds();
    std::cout << "  t=" << sim::to_string(h.completed) << "  x~"
              << format_double(x, 0) << " m  cell " << h.from << " -> "
              << h.to << "  "
              << (h.type == net::HandoverType::kSoft ? "soft" : "hard")
              << (h.success ? "" : " (FAILED)") << "  interruption "
              << sim::to_string(h.interruption()) << '\n';
  }

  std::size_t soft = result.soft_handovers();
  std::size_t ok = result.successful_handovers();
  std::cout << "\n--- closing statistics ---\n"
            << "  completed handovers : " << ok << " (" << soft << " soft)\n"
            << "  tracking aligned    : "
            << format_double(100.0 * result.alignment_until_first_handover(),
                             1)
            << "% of pre-handover tracking time\n"
            << "  beam switches       : "
            << result.counters.value("neighbour_rx_switches") << " neighbour, "
            << result.counters.value("serving_rx_switches") << " serving\n"
            << "  BS-side switches    : "
            << result.counters.value("bs_switches") << '\n';

  std::cout << '\n' << core::build_run_report(spec, result).summary_text();
  return 0;
}
