// The paper's Fig. 1 scenario, narrated.
//
// A mobile served by Cell A walks along the corridor at 1.4 m/s towards
// Cell B's coverage. Silent Tracker discovers B's beam early, tracks it
// silently while BeamSurfer keeps A alive, and completes a soft handover
// the moment A's link finally dies. The program prints a running
// narration with positions, link SNRs, and the protocol's decisions, then
// a summary of the transition.
//
//   ./cell_edge_walk [seed]
#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "core/scenario.hpp"

namespace {

using namespace st;
using namespace st::sim::literals;

const char* bar(double snr_db) {
  if (snr_db > 12.0) {
    return "#####";
  }
  if (snr_db > 9.0) {
    return "####.";
  }
  if (snr_db > 6.0) {
    return "###..";
  }
  if (snr_db > 3.0) {
    return "##...";
  }
  if (snr_db > 0.0) {
    return "#....";
  }
  return ".....";
}

}  // namespace

int main(int argc, char** argv) {
  core::ScenarioSpec spec =
      core::SpecBuilder(core::preset::paper_walk())
          .duration(30'000_ms)
          .collect_trace(true)  // feeds the run-report summary below
          .seed(argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7)
          .build();
  spec.ues.front().chain_handovers = false;  // one clean A -> B story

  std::cout
      << "Cell-edge walk (Fig. 1): Cell A at x=0, Cell B at x=60, corridor "
         "at y=10.\nThe user starts 20 m before the boundary and walks at "
         "1.4 m/s towards Cell B.\n\n";

  const core::ScenarioResult result = core::run_scenario(spec);

  // Interleave the 1 Hz link picture with protocol events.
  std::cout << "time      serving-SNR        protocol events\n";
  std::size_t next_event = 0;
  const auto events = result.log.entries();
  sim::Time done = sim::Time::zero() + sim::Duration::milliseconds(30'000);
  if (sim::Time t{}; result.log.first_time_of("HO_COMPLETE", t)) {
    done = t;
  }
  for (std::int64_t ms = 0; ms <= 30'000; ms += 1000) {
    const auto t = sim::Time::zero() + sim::Duration::milliseconds(ms);
    std::string events_here;
    while (next_event < events.size() && events[next_event].t <= t) {
      if (!events_here.empty()) {
        events_here += "; ";
      }
      events_here += events[next_event].message;
      ++next_event;
    }
    const double snr = result.serving_snr_db.value_at(t, -99.0);
    std::printf("%6llds   [%s] %5.1f dB   %s\n",
                static_cast<long long>(ms / 1000),
                snr > -90.0 ? bar(snr) : " --- ",
                snr > -90.0 ? snr : 0.0, events_here.c_str());
    if (t >= done) {
      std::cout << "        (handover complete — now served by Cell B)\n";
      break;
    }
  }

  std::cout << "\n--- transition summary ---\n";
  for (const auto& h : result.handovers) {
    std::cout << "  cell " << h.from << " -> " << h.to << ": "
              << (h.type == st::net::HandoverType::kSoft ? "SOFT" : "HARD")
              << " handover, " << (h.success ? "completed" : "FAILED")
              << ", service interruption "
              << st::sim::to_string(h.interruption()) << ", "
              << h.rach_attempts << " RACH attempt(s), beam "
              << (h.beam_aligned_at_completion ? "aligned" : "NOT aligned")
              << " at completion\n";
  }
  std::cout << "  neighbour beam aligned (within 3 dB of best) for "
            << st::format_double(
                   100.0 * result.alignment_until_first_handover(), 1)
            << "% of the tracking time before the handover\n";

  std::cout << '\n' << core::build_run_report(spec, result).summary_text();
  return 0;
}
