// Rotation scenario: a user at the cell edge spins the device at 120 °/s
// (the paper's fastest angular dynamics). Both BeamSurfer (serving cell)
// and Silent Tracker (neighbour) must walk their receive beams around the
// codebook to keep the links pointed while the device turns under them.
// Prints a beam "dial" over time — which receive beam each protocol holds
// versus the device yaw — and the resulting link statistics.
//
//   ./rotation_resilience [seed]
#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "core/scenario.hpp"

int main(int argc, char** argv) {
  using namespace st;
  using namespace st::sim::literals;

  core::ScenarioSpec spec =
      core::SpecBuilder(core::preset::paper_rotation())
          .duration(12'000_ms)
          .seed(argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3)
          .build();
  core::UeProfile& ue = spec.ues.front();
  ue.chain_handovers = false;

  std::cout << "Device rotation at the cell edge: " << ue.rotation_rate_deg_s
            << " deg/s (full turn every "
            << format_double(360.0 / ue.rotation_rate_deg_s, 1)
            << " s), 20-degree receive beams.\n"
            << "A fixed base station must appear to 'rotate' through the\n"
            << "codebook; the protocols chase it with adjacent-beam "
               "switches.\n\n";

  const core::ScenarioResult result = core::run_scenario(spec);

  std::cout << "--- beam switching activity ---\n"
            << "  serving RX switches   : "
            << result.counters.value("serving_rx_switches") << '\n'
            << "  neighbour RX switches : "
            << result.counters.value("neighbour_rx_switches") << '\n'
            << "  recovery sweeps       : "
            << result.counters.value("neighbour_recovery_sweeps") << '\n'
            << "  BS-side switches      : "
            << result.counters.value("bs_switches")
            << "  (pure rotation does not move the departure angle — this "
               "should be ~0)\n";

  // Switch cadence check: a full turn crosses 18 beams, so at 120 deg/s
  // the serving tracker should switch ~6 times per second.
  const double run_s = spec.duration.seconds();
  std::cout << "  serving switch rate   : "
            << format_double(static_cast<double>(result.counters.value(
                                 "serving_rx_switches")) /
                                 run_s,
                             1)
            << " /s (ideal for 120 deg/s with 20-deg beams: 6.0 /s)\n";

  std::cout << "\n--- link quality through the spin ---\n";
  const auto pts = result.serving_snr_db.points();
  const std::size_t step = std::max<std::size_t>(1, pts.size() / 12);
  for (std::size_t i = 0; i < pts.size(); i += step) {
    std::printf("  t=%6.0f ms  serving SNR %6.2f dB\n", pts[i].t.ms(),
                pts[i].value);
  }

  std::cout << "\n--- outcome ---\n";
  if (result.handovers.empty()) {
    std::cout << "  serving link survived the whole run (no handover "
                 "needed)\n";
  }
  for (const auto& h : result.handovers) {
    std::cout << "  handover " << h.from << " -> " << h.to << ": "
              << (h.type == net::HandoverType::kSoft ? "soft" : "hard")
              << (h.success ? "" : " FAILED") << ", interruption "
              << sim::to_string(h.interruption()) << '\n';
  }
  std::cout << "  neighbour beam aligned "
            << format_double(100.0 * result.alignment_until_first_handover(),
                             1)
            << "% of tracked time\n";
  return 0;
}
