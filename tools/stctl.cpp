// stctl — command-line client of the scenario service.
//
//   stctl --socket PATH ping
//   stctl --socket PATH submit --preset paper_walk [--seed N]
//         [--overrides '{"n_ues": 8}']
//   stctl --socket PATH status ID | events ID [--after N] | result ID
//   stctl --socket PATH cancel ID | stats | drain
//   stctl --socket PATH run --preset paper_walk [--seed N] [--overrides J]
//
// `run` submits, waits for completion, and prints the report JSON —
// the one-shot form the CI smoke test pipes into `python3 -m json.tool`.
// Exit codes: 0 ok, 1 typed server error, 2 usage/transport error.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "serve/client.hpp"

namespace {

using st::json::Value;

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: stctl --socket PATH COMMAND [args]\n"
               "  ping | stats | drain\n"
               "  submit --preset NAME [--seed N] [--overrides JSON]\n"
               "  run    --preset NAME [--seed N] [--overrides JSON]\n"
               "  status ID | events ID [--after N] | result ID | cancel ID\n"
               "  wait ID [--timeout-ms N]\n");
  std::exit(2);
}

/// Connect, retrying briefly so a freshly forked daemon can finish
/// binding its socket.
st::serve::Client& connect_or_die(st::serve::Client& client,
                                  const std::string& socket_path) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(5000);
  while (!client.connect(socket_path)) {
    if (std::chrono::steady_clock::now() >= deadline) {
      std::fprintf(stderr, "stctl: cannot connect to %s\n",
                   socket_path.c_str());
      std::exit(2);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return client;
}

[[nodiscard]] bool response_ok(const Value& response) {
  const Value* ok = response.find("ok");
  return ok != nullptr && ok->kind() == st::json::Value::Kind::kBool &&
         ok->as_bool();
}

int print_response(const Value& response) {
  std::printf("%s\n", response.dump().c_str());
  return response_ok(response) ? 0 : 1;
}

/// Build the submission document from --preset/--seed/--overrides.
Value job_from_args(const std::string& preset, const std::string& seed,
                    const std::string& overrides) {
  Value job = Value::object();
  job.set("preset", Value::string(preset));
  if (!seed.empty()) {
    job.set("seed", Value::unsigned_integer(std::strtoull(seed.c_str(), nullptr, 10)));
  }
  if (!overrides.empty()) {
    job.set("overrides", st::json::parse(overrides));
  }
  return job;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string command;
  std::string preset;
  std::string seed;
  std::string overrides;
  std::string after = "0";
  std::string timeout_ms = "120000";
  std::uint64_t id = 0;
  bool have_id = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--socket" && has_value) {
      socket_path = argv[++i];
    } else if (arg == "--preset" && has_value) {
      preset = argv[++i];
    } else if (arg == "--seed" && has_value) {
      seed = argv[++i];
    } else if (arg == "--overrides" && has_value) {
      overrides = argv[++i];
    } else if (arg == "--after" && has_value) {
      after = argv[++i];
    } else if (arg == "--timeout-ms" && has_value) {
      timeout_ms = argv[++i];
    } else if (command.empty() && !arg.empty() && arg[0] != '-') {
      command = arg;
    } else if (!command.empty() && !have_id && !arg.empty() && arg[0] != '-') {
      id = std::strtoull(arg.c_str(), nullptr, 10);
      have_id = true;
    } else {
      usage();
    }
  }
  if (socket_path.empty() || command.empty()) {
    usage();
  }

  st::serve::Client client;
  connect_or_die(client, socket_path);
  try {
    if (command == "ping") {
      return print_response(client.ping());
    }
    if (command == "stats") {
      return print_response(client.stats());
    }
    if (command == "drain") {
      return print_response(client.drain());
    }
    if (command == "submit" || command == "run") {
      if (preset.empty()) {
        usage();
      }
      const Value job = job_from_args(preset, seed, overrides);
      Value submitted = client.submit(job);
      if (!response_ok(submitted) || command == "submit") {
        return print_response(submitted);
      }
      const std::uint64_t job_id = submitted.find("id")->as_u64();
      const int timeout = static_cast<int>(std::strtol(timeout_ms.c_str(), nullptr, 10));
      const auto final_status = client.wait(job_id, timeout);
      if (!final_status.has_value()) {
        std::fprintf(stderr, "stctl: job %llu timed out\n",
                     static_cast<unsigned long long>(job_id));
        return 2;
      }
      Value result = client.result(job_id);
      if (!response_ok(result)) {
        return print_response(result);
      }
      std::printf("%s\n", result.find("report")->dump().c_str());
      return 0;
    }
    if (!have_id) {
      usage();
    }
    if (command == "status") {
      return print_response(client.status(id));
    }
    if (command == "events") {
      return print_response(
          client.events(id, std::strtoull(after.c_str(), nullptr, 10)));
    }
    if (command == "result") {
      Value result = client.result(id);
      if (!response_ok(result)) {
        return print_response(result);
      }
      std::printf("%s\n", result.find("report")->dump().c_str());
      return 0;
    }
    if (command == "cancel") {
      return print_response(client.cancel(id));
    }
    if (command == "wait") {
      const int timeout = static_cast<int>(std::strtol(timeout_ms.c_str(), nullptr, 10));
      const auto final_status = client.wait(id, timeout);
      if (!final_status.has_value()) {
        std::fprintf(stderr, "stctl: job %llu timed out\n",
                     static_cast<unsigned long long>(id));
        return 2;
      }
      return print_response(*final_status);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "stctl: %s\n", e.what());
    return 2;
  }
  usage();
}
