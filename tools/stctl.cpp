// stctl — command-line client of the scenario service.
//
//   stctl --socket PATH ping
//   stctl --socket PATH submit --preset paper_walk [--seed N]
//         [--overrides '{"n_ues": 8}']
//   stctl --socket PATH status ID | events ID [--after N] | result ID
//   stctl --socket PATH cancel ID | stats | drain
//   stctl --socket PATH run --preset paper_walk [--seed N] [--overrides J]
//   stctl --socket PATH watch [--period-ms N] [--frames N]
//   stctl --socket PATH tail [--job ID] [--frames N]
//
// `run` submits, waits for completion, and prints the report JSON —
// the one-shot form the CI smoke test pipes into `python3 -m json.tool`.
// `watch` subscribes to the stats stream and redraws a one-screen view
// per snapshot; `tail` subscribes to the event stream and prints one
// line per job lifecycle / progress frame. Both run until the stream
// closes (daemon drained or stopped) or --frames N frames were shown.
// Exit codes: 0 ok, 1 typed server error, 2 usage/transport error.

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "serve/client.hpp"

namespace {

using st::json::Value;

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: stctl --socket PATH COMMAND [args]\n"
               "  ping | stats | drain\n"
               "  submit --preset NAME [--seed N] [--overrides JSON]\n"
               "  run    --preset NAME [--seed N] [--overrides JSON]\n"
               "  status ID | events ID [--after N] | result ID | cancel ID\n"
               "  wait ID [--timeout-ms N]\n"
               "  watch [--period-ms N] [--frames N]\n"
               "  tail  [--job ID] [--frames N]\n");
  std::exit(2);
}

/// Connect, retrying briefly so a freshly forked daemon can finish
/// binding its socket.
st::serve::Client& connect_or_die(st::serve::Client& client,
                                  const std::string& socket_path) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(5000);
  while (!client.connect(socket_path)) {
    if (std::chrono::steady_clock::now() >= deadline) {
      std::fprintf(stderr, "stctl: cannot connect to %s\n",
                   socket_path.c_str());
      std::exit(2);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return client;
}

[[nodiscard]] bool response_ok(const Value& response) {
  const Value* ok = response.find("ok");
  return ok != nullptr && ok->kind() == st::json::Value::Kind::kBool &&
         ok->as_bool();
}

int print_response(const Value& response) {
  std::printf("%s\n", response.dump().c_str());
  return response_ok(response) ? 0 : 1;
}

/// Build the submission document from --preset/--seed/--overrides.
Value job_from_args(const std::string& preset, const std::string& seed,
                    const std::string& overrides) {
  Value job = Value::object();
  job.set("preset", Value::string(preset));
  if (!seed.empty()) {
    job.set("seed", Value::unsigned_integer(std::strtoull(seed.c_str(), nullptr, 10)));
  }
  if (!overrides.empty()) {
    job.set("overrides", st::json::parse(overrides));
  }
  return job;
}

[[nodiscard]] std::uint64_t field_u64(const Value* obj, const char* key) {
  if (obj == nullptr) {
    return 0;
  }
  const Value* v = obj->find(key);
  return v == nullptr ? 0 : v->u64_or(0);
}

/// One-screen rendering of a full stats frame (watch subscribes with
/// delta=false, so every frame is complete and needs no merge state).
void render_stats_frame(const Value& frame, const std::string& socket_path) {
  const Value* data = frame.find("data");
  if (data == nullptr) {
    return;
  }
  if (::isatty(STDOUT_FILENO) != 0) {
    std::printf("\x1b[H\x1b[2J");
  }
  const double t_s =
      static_cast<double>(field_u64(&frame, "t_ns")) / 1e9;
  const Value* draining = data->find("draining");
  std::printf("stserved %s — up %.1fs%s\n", socket_path.c_str(), t_s,
              draining != nullptr && draining->bool_or(false)
                  ? "  [draining]"
                  : "");
  std::printf("queue depth %llu   running %llu\n",
              static_cast<unsigned long long>(field_u64(data, "queue_depth")),
              static_cast<unsigned long long>(field_u64(data, "jobs_running")));
  const Value* counters = data->find("counters");
  std::printf("jobs");
  for (const char* name :
       {"submitted", "queued", "running", "done", "cancelled", "failed",
        "shed"}) {
    std::printf("  %s=%llu", name,
                static_cast<unsigned long long>(field_u64(
                    counters, (std::string("serve.jobs.") + name).c_str())));
  }
  std::printf("\n");
  const Value* latency = data->find("latency");
  if (latency != nullptr) {
    std::printf("%-22s %10s %10s %10s %10s %10s\n", "latency (ms)", "count",
                "p50", "p99", "p999", "max");
    for (const auto& [name, digest] : latency->members()) {
      std::printf("%-22s %10llu %10.2f %10.2f %10.2f %10.2f\n", name.c_str(),
                  static_cast<unsigned long long>(field_u64(&digest, "count")),
                  digest.find("p50") != nullptr ? digest.find("p50")->as_double()
                                                : 0.0,
                  digest.find("p99") != nullptr ? digest.find("p99")->as_double()
                                                : 0.0,
                  digest.find("p999") != nullptr
                      ? digest.find("p999")->as_double()
                      : 0.0,
                  digest.find("max") != nullptr ? digest.find("max")->as_double()
                                                : 0.0);
    }
  }
  const std::uint64_t dropped = field_u64(&frame, "dropped");
  if (dropped > 0) {
    std::printf("!! %llu telemetry frames dropped (slow consumer)\n",
                static_cast<unsigned long long>(dropped));
  }
  std::fflush(stdout);
}

/// One line per streamed job/progress frame.
void render_event_frame(const Value& frame) {
  const Value* data = frame.find("data");
  if (data == nullptr) {
    return;
  }
  const double t_s = static_cast<double>(field_u64(&frame, "t_ns")) / 1e9;
  const Value* event = data->find("event");
  const std::uint64_t dropped = field_u64(&frame, "dropped");
  if (dropped > 0) {
    std::printf("[%10.3f] !! %llu frames dropped\n", t_s,
                static_cast<unsigned long long>(dropped));
  }
  std::printf("[%10.3f] job %llu %s", t_s,
              static_cast<unsigned long long>(field_u64(data, "id")),
              event != nullptr ? std::string(event->string_or("?")).c_str()
                               : "?");
  if (data->find("ues_completed") != nullptr) {
    std::printf(" (%llu/%llu ues)",
                static_cast<unsigned long long>(
                    field_u64(data, "ues_completed")),
                static_cast<unsigned long long>(field_u64(data, "ues_total")));
  }
  std::printf("  seq=%llu\n",
              static_cast<unsigned long long>(field_u64(data, "seq")));
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string command;
  std::string preset;
  std::string seed;
  std::string overrides;
  std::string after = "0";
  std::string timeout_ms = "120000";
  std::string period_ms = "1000";
  std::string frames_limit = "0";
  std::string job_filter;
  std::uint64_t id = 0;
  bool have_id = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--socket" && has_value) {
      socket_path = argv[++i];
    } else if (arg == "--preset" && has_value) {
      preset = argv[++i];
    } else if (arg == "--seed" && has_value) {
      seed = argv[++i];
    } else if (arg == "--overrides" && has_value) {
      overrides = argv[++i];
    } else if (arg == "--after" && has_value) {
      after = argv[++i];
    } else if (arg == "--timeout-ms" && has_value) {
      timeout_ms = argv[++i];
    } else if (arg == "--period-ms" && has_value) {
      period_ms = argv[++i];
    } else if (arg == "--frames" && has_value) {
      frames_limit = argv[++i];
    } else if (arg == "--job" && has_value) {
      job_filter = argv[++i];
    } else if (command.empty() && !arg.empty() && arg[0] != '-') {
      command = arg;
    } else if (!command.empty() && !have_id && !arg.empty() && arg[0] != '-') {
      id = std::strtoull(arg.c_str(), nullptr, 10);
      have_id = true;
    } else {
      usage();
    }
  }
  if (socket_path.empty() || command.empty()) {
    usage();
  }

  st::serve::Client client;
  connect_or_die(client, socket_path);
  try {
    if (command == "ping") {
      return print_response(client.ping());
    }
    if (command == "stats") {
      return print_response(client.stats());
    }
    if (command == "drain") {
      return print_response(client.drain());
    }
    if (command == "submit" || command == "run") {
      if (preset.empty()) {
        usage();
      }
      const Value job = job_from_args(preset, seed, overrides);
      Value submitted = client.submit(job);
      if (!response_ok(submitted) || command == "submit") {
        return print_response(submitted);
      }
      const std::uint64_t job_id = submitted.find("id")->as_u64();
      const int timeout = static_cast<int>(std::strtol(timeout_ms.c_str(), nullptr, 10));
      const auto final_status = client.wait(job_id, timeout);
      if (!final_status.has_value()) {
        std::fprintf(stderr, "stctl: job %llu timed out\n",
                     static_cast<unsigned long long>(job_id));
        return 2;
      }
      Value result = client.result(job_id);
      if (!response_ok(result)) {
        return print_response(result);
      }
      std::printf("%s\n", result.find("report")->dump().c_str());
      return 0;
    }
    if (command == "watch" || command == "tail") {
      const bool watch = command == "watch";
      const auto period = static_cast<std::uint32_t>(
          std::strtoul(period_ms.c_str(), nullptr, 10));
      const std::uint64_t max_frames =
          std::strtoull(frames_limit.c_str(), nullptr, 10);
      const std::uint64_t only_job =
          job_filter.empty() ? 0
                             : std::strtoull(job_filter.c_str(), nullptr, 10);
      // watch wants complete snapshots (no merge state client-side);
      // tail wants lifecycle/progress frames only, no snapshots.
      Value ack = watch ? client.subscribe("stats", period, /*delta=*/false)
                        : client.subscribe("events", 0);
      if (!response_ok(ack)) {
        return print_response(ack);
      }
      std::uint64_t shown = 0;
      bool closed = false;
      while (!closed) {
        const auto frame = client.next_frame(/*timeout_ms=*/1000, &closed);
        if (!frame.has_value()) {
          continue;  // idle poll tick; closed breaks the loop
        }
        if (watch) {
          render_stats_frame(*frame, socket_path);
        } else {
          const Value* data = frame->find("data");
          if (only_job != 0 && field_u64(data, "id") != only_job) {
            continue;
          }
          render_event_frame(*frame);
        }
        if (max_frames > 0 && ++shown >= max_frames) {
          break;
        }
      }
      return 0;
    }
    if (!have_id) {
      usage();
    }
    if (command == "status") {
      return print_response(client.status(id));
    }
    if (command == "events") {
      return print_response(
          client.events(id, std::strtoull(after.c_str(), nullptr, 10)));
    }
    if (command == "result") {
      Value result = client.result(id);
      if (!response_ok(result)) {
        return print_response(result);
      }
      std::printf("%s\n", result.find("report")->dump().c_str());
      return 0;
    }
    if (command == "cancel") {
      return print_response(client.cancel(id));
    }
    if (command == "wait") {
      const int timeout = static_cast<int>(std::strtol(timeout_ms.c_str(), nullptr, 10));
      const auto final_status = client.wait(id, timeout);
      if (!final_status.has_value()) {
        std::fprintf(stderr, "stctl: job %llu timed out\n",
                     static_cast<unsigned long long>(id));
        return 2;
      }
      return print_response(*final_status);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "stctl: %s\n", e.what());
    return 2;
  }
  usage();
}
