// stserved — the scenario service daemon.
//
// Listens on a Unix-domain socket, runs submitted fleet scenarios on a
// bounded worker pool, and exits cleanly on SIGINT/SIGTERM or once a
// client-requested drain has finished. See docs/SERVING.md.
//
//   stserved --socket /tmp/st.sock [--workers 2] [--queue-capacity 16]
//            [--fleet-threads 0] [--trace-out trace.json]
//
// --trace-out exports the daemon's job-queue timeline on exit as a
// Perfetto/chrome trace: one async span per job state (queued, running),
// terminal states as instants — load it at ui.perfetto.dev.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "obs/export.hpp"
#include "serve/server.hpp"

namespace {

volatile std::sig_atomic_t g_signalled = 0;

void on_signal(int) { g_signalled = 1; }

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: stserved --socket PATH [--workers N]\n"
               "                [--queue-capacity N] [--fleet-threads N]\n"
               "                [--trace-out PATH]\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  st::serve::ServerConfig config;
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--socket" && has_value) {
      config.socket_path = argv[++i];
    } else if (arg == "--workers" && has_value) {
      config.workers = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--queue-capacity" && has_value) {
      config.queue_capacity = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--fleet-threads" && has_value) {
      config.fleet_threads = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--trace-out" && has_value) {
      trace_out = argv[++i];
    } else {
      usage();
    }
  }
  if (config.socket_path.empty() || config.workers == 0 ||
      config.queue_capacity == 0) {
    usage();
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  st::serve::Server server(config);
  try {
    server.start();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "stserved: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "stserved: listening on %s (%zu workers, queue %zu)\n",
               config.socket_path.c_str(), config.workers,
               config.queue_capacity);

  // Run until a signal arrives or a client-requested drain completes.
  while (g_signalled == 0 && !server.drained()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  const bool drained = server.drained();
  server.stop();
  if (!trace_out.empty()) {
    // All threads are joined, so the recorder is quiescent.
    if (st::obs::write_chrome_trace_file(server.trace(), trace_out)) {
      std::fprintf(stderr, "stserved: job trace written to %s\n",
                   trace_out.c_str());
    } else {
      std::fprintf(stderr, "stserved: failed to write trace to %s\n",
                   trace_out.c_str());
    }
  }
  std::fprintf(stderr, "stserved: %s\n",
               drained ? "drained, exiting" : "stopped");
  return 0;
}
