// E1 — Fig. 2a: directional beam search under mobility at the cell edge
// (Human Walk).
//
// A mobile walking at 1.4 m/s on the cell-edge corridor repeatedly
// performs directional search for the neighbouring cell, with the serving
// cell's SSB slots pre-empting its radio (the measurement-resource
// contention of §2). Receive codebooks: 20°, 60°, and the omnidirectional
// single antenna. For each codebook the harness reports the search
// success rate and the latency distribution of successful searches.
//
// Paper shape to reproduce: "Although search under mobility is highly
// delay prone, narrow beams have a significantly higher success rate than
// using an omnidirectional/single antenna at the mobile." — i.e. success
// 20° > 60° >> omni, while per-search latency grows as beams narrow.
#include <iostream>

#include "bench_util.hpp"
#include "net/cell_search.hpp"
#include "net/deployment.hpp"

namespace {

using namespace st;
using namespace st::sim::literals;

struct SearchStats {
  SuccessRate success;
  SampleSet latency_ms;
  SampleSet dwells;
  RunningStats found_rss;
};

SearchStats measure_codebook(double beamwidth_deg, std::uint64_t seed,
                             sim::Duration run_length) {
  net::DeploymentConfig dep_config;
  net::Deployment deployment = net::make_cell_row(dep_config, 2);
  auto walk =
      net::make_edge_walk(deployment, 1.4, run_length + 2000_ms,
                          derive_seed(seed, "mobility"));

  net::EnvironmentConfig env_config;
  env_config.horizon = run_length + 2000_ms;
  env_config.seed = derive_seed(seed, "environment");
  net::RadioEnvironment env(env_config, std::move(deployment.base_stations),
                            walk, core::make_ue_codebook(beamwidth_deg));

  sim::Simulator simulator;
  SearchStats stats;

  // The serving cell's slots own the radio, as during a real connection.
  const auto busy = [&env](sim::Time t) {
    return env.bs(0).schedule().ssb_at(t).has_value();
  };

  // Back-to-back search attempts until the walk ends.
  auto search = std::make_unique<net::CellSearch>(
      simulator, env, std::vector<net::CellId>{1}, net::CellSearchConfig{},
      busy);
  std::function<void(const net::SearchOutcome&)> on_done =
      [&](const net::SearchOutcome& outcome) {
        stats.success.record(outcome.found);
        if (outcome.found) {
          stats.latency_ms.add(outcome.latency.ms());
          stats.dwells.add(static_cast<double>(outcome.dwells_used));
          stats.found_rss.add(outcome.rss_dbm);
        }
        if (simulator.now() < sim::Time::zero() + run_length) {
          search->start(on_done);
        }
      };
  search->start(on_done);
  simulator.run_until(sim::Time::zero() + run_length);
  if (search->running()) {
    search->abort();  // the attempt in flight at the end is not counted
  }
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  const st::bench::ObsOptions obs_options =
      st::bench::consume_obs_options(argc, argv);
  st::bench::print_header(
      "E1: beam search under mobility, human walk at cell edge",
      "Fig. 2a — search latency and success rate per mobile codebook");

  const auto run_seeds = st::bench::seeds(12);
  constexpr auto kRunLength = 20'000_ms;

  Table table({"codebook", "searches", "success rate [95% CI]",
               "latency mean ms", "p50 ms", "p95 ms", "mean dwells",
               "found RSS dBm"});

  for (const double beamwidth : {20.0, 60.0, 0.0}) {
    SearchStats all;
    for (const std::uint64_t seed : run_seeds) {
      SearchStats s = measure_codebook(beamwidth, seed, kRunLength);
      for (const double v : s.latency_ms.samples()) {
        all.latency_ms.add(v);
      }
      for (const double v : s.dwells.samples()) {
        all.dwells.add(v);
      }
      all.found_rss.merge(s.found_rss);
      for (std::size_t i = 0; i < s.success.successes(); ++i) {
        all.success.record(true);
      }
      for (std::size_t i = 0; i < s.success.trials() - s.success.successes();
           ++i) {
        all.success.record(false);
      }
    }

    table.row()
        .cell(st::core::make_ue_codebook(beamwidth).description())
        .cell(all.success.trials())
        .cell(st::bench::rate_with_ci(all.success));
    if (all.latency_ms.empty()) {
      table.cell("-").cell("-").cell("-").cell("-").cell("-");
    } else {
      table.cell(all.latency_ms.mean(), 1)
          .cell(all.latency_ms.median(), 1)
          .cell(all.latency_ms.percentile(95.0), 1)
          .cell(all.dwells.mean(), 1)
          .cell(all.found_rss.mean(), 1);
    }
  }

  table.print(std::cout);
  std::cout << "\nShape check (paper): success(20deg) > success(60deg) >> "
               "success(omni); latency grows as beams narrow.\n";

  // Optional observability outputs: one instrumented cell-edge walk run
  // (full scenario, so the trace shows search, tracking, and access).
  const st::core::ScenarioSpec traced =
      st::core::SpecBuilder(st::core::preset::paper_walk())
          .duration(kRunLength)
          .seed(1000)
          .build();
  return st::bench::write_observability(obs_options, traced) ? 0 : 1;
}
