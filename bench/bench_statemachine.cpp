// E2 — Fig. 2b: the Silent Tracker state machine, measured.
//
// The state machine itself is validated by the test suite; this bench
// reports how long the protocol spends in each state on the paper's
// cell-edge walk, and the per-transition latencies that the state machine
// design implies: time-to-discovery (InitialSearch), silent tracking
// horizon (Tracking, i.e. how much head start the protocol banks before
// the serving cell dies), and access time (Accessing).
#include <iostream>

#include "bench_util.hpp"

namespace {

using namespace st;
using namespace st::sim::literals;

struct Dwells {
  SampleSet search_ms;    ///< start -> FOUND
  SampleSet tracking_ms;  ///< FOUND -> SERVING_LOST (the banked head start)
  SampleSet access_ms;    ///< Accessing -> HO_COMPLETE
};

}  // namespace

int main() {
  st::bench::print_header(
      "E2: state machine dwell/transition times (human walk)",
      "Fig. 2b — the protocol states and what they cost");

  Dwells dwells;
  SuccessRate discovery_before_loss;

  core::ScenarioSpec spec = core::preset::paper_walk();
  spec.ues.front().chain_handovers = false;  // isolate one full traversal
  for (const std::uint64_t seed : st::bench::seeds(30)) {
    spec.seed = seed;
    const core::ScenarioResult result = core::run_scenario(spec);

    sim::Time t_found{};
    sim::Time t_lost{};
    sim::Time t_access{};
    sim::Time t_complete{};
    const bool found = result.log.first_time_of("FOUND", t_found);
    const bool lost = result.log.first_time_of("SERVING_LOST", t_lost);
    const bool access = result.log.first_time_of("STATE Accessing", t_access);
    const bool complete = result.log.first_time_of("HO_COMPLETE", t_complete);

    if (found) {
      dwells.search_ms.add(t_found.ms());
    }
    if (found && lost && t_found < t_lost) {
      dwells.tracking_ms.add((t_lost - t_found).ms());
    }
    if (lost) {
      discovery_before_loss.record(found && t_found < t_lost);
    }
    if (access && complete) {
      dwells.access_ms.add((t_complete - t_access).ms());
    }
  }

  Table table({"state / transition", "samples", "mean ms", "p50 ms", "p95 ms"});
  const auto add_row = [&table](const char* name, const SampleSet& s) {
    table.row().cell(name).cell(s.count());
    if (s.empty()) {
      table.cell("-").cell("-").cell("-");
    } else {
      table.cell(s.mean(), 1).cell(s.median(), 1).cell(s.percentile(95.0), 1);
    }
  };
  add_row("InitialSearch (start -> neighbour found)", dwells.search_ms);
  add_row("Tracking (found -> serving lost: banked head start)",
          dwells.tracking_ms);
  add_row("Accessing (serving lost -> Msg4)", dwells.access_ms);
  table.print(std::cout);

  std::cout << "\nNeighbour discovered before the serving link died: "
            << st::bench::rate_with_ci(discovery_before_loss) << "\n"
            << "Shape check: the tracking head start is *seconds* while "
               "access is tens of ms — the whole point of tracking "
               "silently ahead of time.\n";
  return 0;
}
