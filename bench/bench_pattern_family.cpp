// E11 — beam pattern realism ablation (extension).
//
// The analytic Gaussian pattern (clean main lobe over a flat -20 dB
// floor) is the standard modelling abstraction; a physical
// half-wavelength ULA has a sinc-like main lobe with genuine sidelobes
// (first sidelobe only ~13 dB down). Sidelobes matter to this system in
// two ways: during search they admit detections of a cell through the
// wrong receive beam (a "ghost" alignment the tracker must then fix), and
// during tracking they raise the floor the 3 dB rule sits on. This bench
// runs the paper's scenarios with both families at the same nominal
// beamwidth.
#include <iostream>

#include "bench_util.hpp"

namespace {

using namespace st;
using namespace st::sim::literals;

}  // namespace

int main() {
  st::bench::print_header(
      "E11: beam pattern family — analytic Gaussian vs physical ULA",
      "extension — does the modelling abstraction change the paper's "
      "conclusions?");

  std::cout << "codebooks at nominal 20 deg: Gaussian = "
            << core::make_ue_codebook(20.0, false).description()
            << ", ULA = " << core::make_ue_codebook(20.0, true).description()
            << " (peak gains "
            << format_double(core::make_ue_codebook(20.0, false)
                                 .beam(0)
                                 .pattern()
                                 .peak_gain_dbi(),
                             1)
            << " / "
            << format_double(core::make_ue_codebook(20.0, true)
                                 .beam(0)
                                 .pattern()
                                 .peak_gain_dbi(),
                             1)
            << " dBi)\n\n";

  const auto run_seeds = st::bench::seeds(12);

  Table table({"scenario", "pattern", "time aligned %",
               "handover success [CI]", "soft [CI]", "interruption p50 ms"});

  for (const auto mobility : {core::MobilityScenario::kHumanWalk,
                              core::MobilityScenario::kRotation}) {
    for (const bool ula : {false, true}) {
      core::ScenarioSpec spec = core::SpecBuilder(core::preset::paper(mobility))
                                    .duration(20'000_ms)
                                    .build();
      spec.ues.front().ue_ula_codebook = ula;

      const st::bench::Aggregate agg =
          st::bench::run_batch_parallel(spec, run_seeds);
      table.row()
          .cell(std::string(core::to_string(mobility)))
          .cell(ula ? "ULA (real sidelobes)" : "Gaussian (analytic)")
          .cell(agg.alignment_fraction.empty()
                    ? std::string("-")
                    : format_double(100.0 * agg.alignment_fraction.mean(), 1))
          .cell(st::bench::rate_with_ci(agg.handover_success))
          .cell(st::bench::rate_with_ci(agg.soft_fraction))
          .cell(agg.interruption_ms.empty()
                    ? std::string("-")
                    : format_double(agg.interruption_ms.median(), 1));
    }
  }
  table.print(std::cout);

  std::cout << "\nShape check: the paper's conclusions (soft handovers, "
               "aligned tracking) must hold for both families — the "
               "protocol rides the main lobe, and sidelobes cost a little "
               "alignment, not the mechanism.\n";
  return 0;
}
