// E6 — ablation of the probe policy: adjacent beams vs full re-sweep.
//
// When the 3 dB drop fires, the paper's protocol probes only the two
// directionally adjacent receive beams (one SSB burst each). The ablation
// baseline re-measures the whole codebook instead — per decision it finds
// the global best beam, but a full 20° codebook sweep costs 17 bursts
// (~340 ms) during which the link keeps moving. We also compare the omni
// "codebook" (no beams to manage at all, and no beamforming gain).
//
// Expected shape: adjacent probing wins under continuous mobility (it is
// the locality assumption that physical motion moves the best beam to a
// neighbour first); the full sweep loses tracking time; omni has nothing
// to track but cannot reach cell-edge SNR.
#include <iostream>

#include "bench_util.hpp"

namespace {

using namespace st;
using namespace st::sim::literals;

}  // namespace

int main(int argc, char** argv) {
  const st::bench::ObsOptions obs = st::bench::consume_obs_options(argc, argv);
  const st::bench::SpecOptions spec_options =
      st::bench::consume_spec_options(argc, argv);
  st::bench::reject_unknown_options(argc, argv, "bench_ablation_policy");

  st::bench::print_header(
      "E6: probe-policy ablation (adjacent vs full re-sweep vs omni)",
      "§3 design choice — 'switch to one of the directionally adjacent "
      "receive beams'");

  const auto run_seeds = st::bench::seeds(12);
  const std::vector<st::bench::LabelledSpec> axis = st::bench::scenario_axis(
      spec_options,
      {core::MobilityScenario::kHumanWalk, core::MobilityScenario::kRotation},
      20'000);

  struct Variant {
    const char* name;
    double beamwidth_deg;
    core::ProbePolicy policy;
  };
  const Variant variants[] = {
      {"adjacent (paper)", 20.0, core::ProbePolicy::kAdjacent},
      {"full re-sweep", 20.0, core::ProbePolicy::kFullSweep},
      {"omni", 0.0, core::ProbePolicy::kAdjacent},
  };

  Table table({"scenario", "policy", "time aligned %", "handover success [CI]",
               "soft [CI]", "interruption p50 ms"});

  for (const st::bench::LabelledSpec& scenario : axis) {
    for (const Variant& variant : variants) {
      core::ScenarioSpec spec = scenario.spec;
      for (core::UeProfile& ue : spec.ues) {
        ue.ue_beamwidth_deg = variant.beamwidth_deg;
        ue.tracker.probe_policy = variant.policy;
      }

      const st::bench::Aggregate agg =
          st::bench::run_batch_parallel(spec, run_seeds);

      table.row()
          .cell(scenario.label)
          .cell(variant.name)
          .cell(agg.alignment_fraction.empty()
                    ? std::string("-")
                    : format_double(100.0 * agg.alignment_fraction.mean(), 1))
          .cell(st::bench::rate_with_ci(agg.handover_success))
          .cell(st::bench::rate_with_ci(agg.soft_fraction))
          .cell(agg.interruption_ms.empty()
                    ? std::string("-")
                    : format_double(agg.interruption_ms.median(), 1));
    }
  }
  table.print(std::cout);

  std::cout << "\nNote: omni's 'time aligned' is trivially 100% — a single "
               "0 dBi beam is always its own best beam; its handover success "
               "column is what shows it cannot reach cell-edge SNR.\n"
               "Shape check: adjacent probing tracks at least as well as "
               "the full re-sweep under slow motion and far better under "
               "rotation, at a fraction of the measurement budget; omni "
               "cannot hold cell-edge links.\n";
  return st::bench::write_observability(obs, axis.front().spec) ? 0 : 1;
}
