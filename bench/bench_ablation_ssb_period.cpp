// E8 — ablation of the SSB burst periodicity (extension).
//
// Every in-band decision in the system rides on the synchronisation
// signal cadence: one measurement opportunity per beam per period. The
// paper inherits NR's 20 ms default (which also sets the 1.28 s worst
// case search the introduction cites: 64 beam dwells x 20 ms). This
// sweep varies the period (NR allows 5–160 ms) and reports what it buys
// and costs:
//   * shorter periods -> faster drop detection and probing -> better
//     tracking alignment, shorter search;
//   * longer periods -> less overhead in a real system (not modelled),
//     but stale beams and slow discovery.
#include <iostream>

#include "bench_util.hpp"

namespace {

using namespace st;
using namespace st::sim::literals;

}  // namespace

int main(int argc, char** argv) {
  const st::bench::ObsOptions obs = st::bench::consume_obs_options(argc, argv);
  const st::bench::SpecOptions spec_options =
      st::bench::consume_spec_options(argc, argv);
  st::bench::reject_unknown_options(argc, argv, "bench_ablation_ssb_period");

  st::bench::print_header(
      "E8: SSB periodicity ablation (measurement cadence)",
      "extension — the paper's latencies all scale with the 20 ms SSB "
      "period (64 dwells x 20 ms = the 1.28 s search bound of its intro)");

  const auto run_seeds = st::bench::seeds(12);
  const std::vector<st::bench::LabelledSpec> axis = st::bench::scenario_axis(
      spec_options,
      {core::MobilityScenario::kHumanWalk, core::MobilityScenario::kRotation},
      20'000);

  Table table({"scenario", "SSB period ms", "time aligned %",
               "handover success [CI]", "soft [CI]", "interruption p50 ms"});

  for (const st::bench::LabelledSpec& scenario : axis) {
    for (const std::int64_t period_ms : {5LL, 10LL, 20LL, 40LL, 80LL}) {
      core::ScenarioSpec spec = scenario.spec;
      spec.deployment.frame.ssb_period =
          sim::Duration::milliseconds(period_ms);
      // Keep the search budget at 64 dwells, as in NR initial access.
      for (core::UeProfile& ue : spec.ues) {
        ue.tracker.search.dwell = sim::Duration::milliseconds(period_ms);
        ue.tracker.search.budget = sim::Duration::milliseconds(64 * period_ms);
        ue.reactive.search = ue.tracker.search;
      }

      const st::bench::Aggregate agg =
          st::bench::run_batch_parallel(spec, run_seeds);
      table.row()
          .cell(scenario.label)
          .cell(static_cast<int>(period_ms))
          .cell(agg.alignment_fraction.empty()
                    ? std::string("-")
                    : format_double(100.0 * agg.alignment_fraction.mean(), 1))
          .cell(st::bench::rate_with_ci(agg.handover_success))
          .cell(st::bench::rate_with_ci(agg.soft_fraction))
          .cell(agg.interruption_ms.empty()
                    ? std::string("-")
                    : format_double(agg.interruption_ms.median(), 1));
    }
  }
  table.print(std::cout);

  std::cout << "\nShape check: alignment under rotation improves steeply as "
               "the period shrinks (tracking is measurement-cadence "
               "limited); the slow walk barely cares.\n";
  return st::bench::write_observability(obs, axis.front().spec) ? 0 : 1;
}
