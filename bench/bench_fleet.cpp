// E12 — multi-UE fleet engine throughput (extension).
//
// The fleet engine runs N independent mobiles — mixed walk / rotation /
// vehicular profiles, each with its own protocol instance and derived
// random streams — against one shared three-cell deployment, sharded
// across a thread pool. This bench sweeps the fleet size and reports the
// engine's scaling: wall time per sweep, UEs simulated per second, and
// the per-UE snapshot-cache hit rate (the cache is keyed on (UE, cell,
// epoch), so fleet sharding must not dilute it). The parallel schedule is
// bit-identical to the serial one (pinned by tests/fleet/test_fleet.cpp),
// so the numbers here are pure throughput, not a different computation.
//
//   ./bench_fleet [--ues N] [--threads T] [--duration-ms D]
//                 [--preset NAME] [--report-out fleet_report.json]
//
// --preset replicates a named spec preset (paper_walk, grid_walk,
// corridor_drive, edge_ping_pong, ...) across the fleet instead of the
// default mixed walk/rotation/vehicular three-cell row — the multi-cell
// presets exercise the neighbour-ranking handover policy at fleet scale.
//
// Writes BENCH_fleet.json (same schema as BENCH_micro.json) next to the
// binary; --report-out additionally writes the machine-readable
// FleetReport JSON of the largest fleet swept.
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/spec_json.hpp"
#include "fleet/engine.hpp"
#include "obs/export.hpp"

namespace {

using namespace st;
using namespace st::sim::literals;

/// A heterogeneous fleet on the shared three-cell row: profiles cycle
/// through the paper's three mobility models so every sweep exercises
/// walk, rotation, and vehicular dynamics together.
core::ScenarioSpec fleet_spec(const std::string& preset_name,
                              std::size_t n_ues, sim::Duration duration) {
  if (!preset_name.empty()) {
    // Replicate the named preset's profile across the fleet (grid_walk
    // etc. bring their own deployment shape, cell load, and policy).
    core::ScenarioSpec spec = core::preset_by_name(preset_name);
    spec.duration = duration;
    spec.seed = 1000;
    spec.ues.assign(n_ues, spec.ues.front());
    return core::SpecBuilder(std::move(spec)).build();
  }
  core::SpecBuilder builder;
  builder.cells(3).duration(duration).seed(1000);
  const core::UeProfile profiles[] = {core::preset::walking_ue(),
                                      core::preset::rotating_ue(),
                                      core::preset::vehicular_ue()};
  for (std::size_t i = 0; i < n_ues; ++i) {
    builder.ue(profiles[i % 3]);
  }
  return builder.build();
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t only_ues = 0;   // 0 = sweep the default ladder
  unsigned n_threads = 0;     // 0 = hardware concurrency
  std::int64_t duration_ms = 5'000;
  std::string report_out;
  std::string preset_name;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "bench_fleet: missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--ues") {
      only_ues = std::strtoull(next_value().c_str(), nullptr, 10);
    } else if (arg == "--threads") {
      n_threads = static_cast<unsigned>(
          std::strtoul(next_value().c_str(), nullptr, 10));
    } else if (arg == "--duration-ms") {
      duration_ms = std::strtol(next_value().c_str(), nullptr, 10);
    } else if (arg == "--report-out") {
      report_out = next_value();
    } else if (arg == "--preset") {
      preset_name = next_value();
    } else {
      std::cerr << "bench_fleet: unknown option '" << arg << "'\n";
      return 2;
    }
  }

  st::bench::print_header(
      "E12: fleet engine throughput (multi-UE scaling)",
      "extension — N mobiles on one deployment, serial == parallel "
      "bit-identically");

  std::vector<std::size_t> sweep = {1, 8, 64};
  if (only_ues > 0) {
    sweep = {only_ues};
  }

  Table table({"UEs", "threads", "wall s", "UEs/s", "sim s / wall s",
               "cache hit %", "handovers", "SSB obs"});

  struct Entry {
    std::size_t ues;
    double wall_seconds;
    double ues_per_second;
    double cache_hit_rate;
    unsigned threads;
  };
  std::vector<Entry> entries;

  for (const std::size_t n_ues : sweep) {
    const core::ScenarioSpec spec =
        fleet_spec(preset_name, n_ues, sim::Duration::milliseconds(duration_ms));
    const fleet::FleetResult result = fleet::run_fleet(spec, n_threads);

    std::size_t handovers = 0;
    for (const core::ScenarioResult& ue_result : result.ue_results) {
      handovers += ue_result.handovers.size();
    }
    table.row()
        .cell(n_ues)
        .cell(static_cast<std::size_t>(result.threads_used))
        .cell(result.wall_seconds, 3)
        .cell(result.ues_per_second(), 1)
        .cell(result.wall_seconds > 0.0
                  ? result.engine.sim_seconds / result.wall_seconds
                  : 0.0,
              1)
        .cell(100.0 * result.snapshot_cache.hit_rate(), 1)
        .cell(handovers)
        .cell(result.ssb_observations);

    entries.push_back({n_ues, result.wall_seconds, result.ues_per_second(),
                       result.snapshot_cache.hit_rate(),
                       result.threads_used});

    // The machine-readable report covers the largest fleet swept.
    if (!report_out.empty() && n_ues == sweep.back()) {
      const obs::FleetReport report = fleet::build_fleet_report(spec, result);
      if (obs::write_text_file(report_out, report.to_json())) {
        std::cout << "fleet report written to " << report_out << "\n";
      } else {
        std::cerr << "failed to write fleet report to " << report_out << "\n";
        return 1;
      }
    }
  }
  table.print(std::cout);

  // The batched fast path (tentpole of the incremental-snapshot work):
  // every (UE, cell) link held hot in one FleetChannelBatch and swept at
  // 10 ms ticks — pure physics throughput, no protocol state machines.
  // ns/op is one incremental snapshot refresh plus one full beam-pair
  // sweep, the unit the >= 10x claim in docs/PERFORMANCE.md is stated in.
  struct BatchEntry {
    std::size_t ues;
    std::size_t sweeps;
    double wall_seconds;
    double ns_per_sweep;
    net::SnapshotCacheStats stats;
  };
  std::vector<BatchEntry> batch_entries;
  constexpr int kBatchSteps = 500;

  Table batch_table({"UEs", "links", "sweeps", "wall s", "ns/sweep",
                     "cache hit %", "incremental %"});
  for (const std::size_t n_ues : sweep) {
    const core::ScenarioSpec spec =
        fleet_spec(preset_name, n_ues, sim::Duration::milliseconds(duration_ms));
    fleet::FleetChannelBatch batch(spec);
    std::vector<phy::Channel::BestPair> pairs;
    batch.best_pairs(sim::Time::zero(), pairs);  // warm-up: cold builds
    const auto start = std::chrono::steady_clock::now();
    for (int step = 1; step <= kBatchSteps; ++step) {
      batch.best_pairs(
          sim::Time::zero() + sim::Duration::milliseconds(step * 10), pairs);
    }
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    const std::size_t links = batch.ue_count() * batch.cell_count();
    const std::size_t sweeps = static_cast<std::size_t>(kBatchSteps) * links;
    const net::SnapshotCacheStats stats = batch.stats();
    const double ns_per_sweep =
        sweeps > 0 ? wall * 1e9 / static_cast<double>(sweeps) : 0.0;
    const std::uint64_t rebuilds = stats.rebuilds();
    batch_table.row()
        .cell(n_ues)
        .cell(links)
        .cell(sweeps)
        .cell(wall, 3)
        .cell(ns_per_sweep, 0)
        .cell(100.0 * stats.hit_rate(), 1)
        .cell(rebuilds > 0 ? 100.0 * static_cast<double>(
                                         stats.incremental_builds) /
                                 static_cast<double>(rebuilds)
                           : 0.0,
              1);
    batch_entries.push_back({n_ues, sweeps, wall, ns_per_sweep, stats});
  }
  std::cout << "\nbatched (UE,cell) sweeps, " << kBatchSteps
            << " steps x 10 ms:\n";
  batch_table.print(std::cout);

  // BENCH_micro.json schema: a "benchmarks" array of {name, ns_per_op,
  // items_per_second}, plus named extra members.
  std::ofstream out("BENCH_fleet.json");
  out << "{\n  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    const double ns_per_ue =
        e.ues > 0 ? e.wall_seconds * 1e9 / static_cast<double>(e.ues) : 0.0;
    out << "    {\"name\": \"fleet/ues:" << e.ues
        << "\", \"ns_per_op\": " << ns_per_ue
        << ", \"items_per_second\": " << e.ues_per_second << "},\n";
  }
  for (std::size_t i = 0; i < batch_entries.size(); ++i) {
    const BatchEntry& e = batch_entries[i];
    out << "    {\"name\": \"fleet/batched_sweeps/ues:" << e.ues
        << "\", \"ns_per_op\": " << e.ns_per_sweep
        << ", \"items_per_second\": "
        << (e.wall_seconds > 0.0
                ? static_cast<double>(e.sweeps) / e.wall_seconds
                : 0.0)
        << "}" << (i + 1 < batch_entries.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"fleet\": {";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    out << (i > 0 ? ", " : "") << "\"ues_" << e.ues
        << "\": {\"wall_seconds\": " << e.wall_seconds
        << ", \"ues_per_second\": " << e.ues_per_second
        << ", \"snapshot_cache_hit_rate\": " << e.cache_hit_rate
        << ", \"threads\": " << e.threads << "}";
  }
  out << "},\n  \"batched_sweeps\": {";
  for (std::size_t i = 0; i < batch_entries.size(); ++i) {
    const BatchEntry& e = batch_entries[i];
    const net::SnapshotCacheStats& s = e.stats;
    out << (i > 0 ? ", " : "") << "\"ues_" << e.ues
        << "\": {\"ns_per_sweep\": " << e.ns_per_sweep
        << ", \"hits\": " << s.hits << ", \"refreshes\": " << s.refreshes
        << ", \"cold_misses\": " << s.cold_misses
        << ", \"invalidations\": " << s.invalidations
        << ", \"full_builds\": " << s.full_builds
        << ", \"incremental_builds\": " << s.incremental_builds
        << ", \"geometry_reuses\": " << s.geometry_reuses
        << ", \"shadow_reuses\": " << s.shadow_reuses
        << ", \"blockage_reuses\": " << s.blockage_reuses
        << ", \"azimuth_reuses\": " << s.azimuth_reuses
        << ", \"hit_rate\": " << s.hit_rate() << "}";
  }
  out << "}\n}\n";
  std::cout << "\nwrote BENCH_fleet.json\n"
            << "Shape check: UEs/s grows with the fleet until the thread "
               "pool saturates; the cache hit rate stays flat (per-UE "
               "keying keeps fleets from evicting each other).\n";
  return 0;
}
