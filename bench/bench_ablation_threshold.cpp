// E5 — ablation of the 3 dB switching threshold.
//
// Both protocols switch to a directionally adjacent beam "when the RSS
// drops by 3 dB". This harness sweeps that threshold (1–10 dB) on the
// walk and rotation scenarios and reports tracking alignment, switch
// counts (protocol churn), and handover outcomes.
//
// Expected shape: small thresholds thrash (every noise wiggle triggers a
// probe burst, burning measurement slots), large thresholds react too
// late (alignment and completion suffer); ~3 dB sits at the knee — which
// is also half-power, i.e. "the beam has drifted to its -3 dB contour,
// exactly one beamwidth of motion".
#include <iostream>

#include "bench_util.hpp"

namespace {

using namespace st;
using namespace st::sim::literals;

}  // namespace

int main(int argc, char** argv) {
  const st::bench::ObsOptions obs = st::bench::consume_obs_options(argc, argv);
  const st::bench::SpecOptions spec_options =
      st::bench::consume_spec_options(argc, argv);
  st::bench::reject_unknown_options(argc, argv, "bench_ablation_threshold");

  st::bench::print_header(
      "E5: switching-threshold ablation (the paper's 3 dB rule)",
      "§3 design choice — adjacent-beam switch on a 3 dB drop");

  const auto run_seeds = st::bench::seeds(12);
  const std::vector<st::bench::LabelledSpec> axis = st::bench::scenario_axis(
      spec_options,
      {core::MobilityScenario::kHumanWalk, core::MobilityScenario::kRotation},
      20'000);

  Table table({"scenario", "threshold dB", "time aligned %",
               "rx switches / run", "drops / run", "handover success [CI]",
               "soft [CI]"});

  for (const st::bench::LabelledSpec& scenario : axis) {
    for (const double threshold : {1.0, 2.0, 3.0, 5.0, 8.0, 10.0}) {
      core::ScenarioSpec spec = scenario.spec;
      for (core::UeProfile& ue : spec.ues) {
        ue.tracker.neighbour_tracker.drop_threshold_db = threshold;
        ue.tracker.beamsurfer.tracker.drop_threshold_db = threshold;
      }

      st::bench::Aggregate agg;
      RunningStats switches;
      RunningStats drops;
      for (const std::uint64_t seed : run_seeds) {
        spec.seed = seed;
        const core::ScenarioResult result = core::run_scenario(spec);
        agg.absorb(result);
        switches.add(static_cast<double>(
            result.counters.value("neighbour_rx_switches") +
            result.counters.value("serving_rx_switches")));
        drops.add(static_cast<double>(
            result.counters.value("neighbour_drop_events") +
            result.counters.value("serving_drop_events")));
      }

      table.row()
          .cell(scenario.label)
          .cell(threshold, 1)
          .cell(100.0 * agg.alignment_fraction.mean(), 1)
          .cell(switches.mean(), 1)
          .cell(drops.mean(), 1)
          .cell(st::bench::rate_with_ci(agg.handover_success))
          .cell(st::bench::rate_with_ci(agg.soft_fraction));
    }
  }
  table.print(std::cout);

  std::cout << "\nShape check: switch churn falls monotonically with the "
               "threshold; alignment degrades once the threshold exceeds "
               "the beam overlap depth. 3 dB sits at the knee.\n";
  return st::bench::write_observability(obs, axis.front().spec) ? 0 : 1;
}
