// E4 — service interruption: Silent Tracker's soft handover vs the
// reactive (hard) baseline.
//
// Paper context (§1/§2): initial beam search can take up to 1.28 s, which
// is what a reactive mobile pays *after* its serving link has already
// died; Silent Tracker banks the search and tracking ahead of time, so
// the interruption is only the random access on an already-aligned beam.
// The harness reports interruption distributions for both protocols on
// the same seeds/scenarios.
//
//   ./bench_handover_interruption [--preset NAME] [--duration-ms D]
//                                 [--report-out report.json]
//                                 [--trace-out trace.json]
#include <iostream>

#include "bench_util.hpp"

namespace {

using namespace st;
using namespace st::sim::literals;

}  // namespace

int main(int argc, char** argv) {
  const st::bench::ObsOptions obs = st::bench::consume_obs_options(argc, argv);
  const st::bench::SpecOptions spec_options =
      st::bench::consume_spec_options(argc, argv);
  st::bench::reject_unknown_options(argc, argv, "bench_handover_interruption");

  st::bench::print_header(
      "E4: handover service interruption, Silent Tracker vs reactive",
      "§1/§2 claim — soft handover avoids the up-to-1.28 s search a hard "
      "handover pays");

  const auto run_seeds = st::bench::seeds(25);
  const std::vector<st::bench::LabelledSpec> axis = st::bench::scenario_axis(
      spec_options,
      {core::MobilityScenario::kHumanWalk, core::MobilityScenario::kRotation,
       core::MobilityScenario::kVehicular});

  Table table({"scenario", "protocol", "handovers", "success [CI]",
               "interruption mean ms", "p50 ms", "p95 ms", "max ms"});

  SampleSet soft_all;
  SampleSet hard_all;

  for (const st::bench::LabelledSpec& scenario : axis) {
    for (const auto protocol :
         {core::ProtocolKind::kSilentTracker, core::ProtocolKind::kReactive}) {
      core::ScenarioSpec spec = scenario.spec;
      for (core::UeProfile& ue : spec.ues) {
        ue.protocol = protocol;
      }
      const st::bench::Aggregate agg =
          st::bench::run_batch_parallel(spec, run_seeds);

      table.row()
          .cell(scenario.label)
          .cell(std::string(core::to_string(protocol)))
          .cell(agg.handover_success.trials())
          .cell(st::bench::rate_with_ci(agg.handover_success));
      if (agg.interruption_ms.empty()) {
        table.cell("-").cell("-").cell("-").cell("-");
      } else {
        table.cell(agg.interruption_ms.mean(), 1)
            .cell(agg.interruption_ms.median(), 1)
            .cell(agg.interruption_ms.percentile(95.0), 1)
            .cell(agg.interruption_ms.max(), 1);
        auto& sink = protocol == core::ProtocolKind::kSilentTracker
                         ? soft_all
                         : hard_all;
        for (const double v : agg.interruption_ms.samples()) {
          sink.add(v);
        }
      }
    }
  }
  table.print(std::cout);

  if (!soft_all.empty() && !hard_all.empty()) {
    std::cout << "\nOverall mean interruption: silent_tracker = "
              << format_double(soft_all.mean(), 1)
              << " ms, reactive = " << format_double(hard_all.mean(), 1)
              << " ms  (ratio "
              << format_double(hard_all.mean() / soft_all.mean(), 1)
              << "x)\nMedian interruption:       silent_tracker = "
              << format_double(soft_all.median(), 1)
              << " ms, reactive = " << format_double(hard_all.median(), 1)
              << " ms  (ratio "
              << format_double(hard_all.median() / soft_all.median(), 1)
              << "x)\n";
    // Translate to user impact: a 1 Gb/s mm-wave stream loses this much
    // data per handover gap.
    constexpr double kGbps = 1.0;
    std::cout << "At " << kGbps << " Gb/s, a median gap costs "
              << format_double(soft_all.median() * kGbps / 8.0, 1)
              << " MB (silent_tracker) vs "
              << format_double(hard_all.median() * kGbps / 8.0, 1)
              << " MB (reactive) of lost data.\n";
  }
  std::cout << "Shape check: reactive interruption is dominated by the "
               "directional search (hundreds of ms to seconds); Silent "
               "Tracker pays only RACH on an aligned beam.\n";
  // The instrumented re-run covers the first swept scenario under the
  // paper's protocol.
  return st::bench::write_observability(obs, axis.front().spec) ? 0 : 1;
}
