// Shared helpers for the benchmark harness.
//
// Every bench binary regenerates one table/figure of the paper's
// evaluation (see DESIGN.md §4) and prints the rows/series the paper
// reports. All runs are seeded; rerunning a binary reproduces its output
// bit for bit. Configurations are ScenarioSpecs, usually started from the
// presets in core/scenario_spec.hpp (preset::paper_walk() etc.) so every
// binary shares one definition of the paper's setups.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <initializer_list>
#include <iostream>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/scenario.hpp"
#include "core/spec_json.hpp"
#include "fleet/parallel.hpp"
#include "obs/export.hpp"

namespace st::bench {

/// Observability outputs shared by the scenario-driven binaries:
/// `--trace-out=<path>` writes a Chrome/Perfetto trace.json of one
/// instrumented run, `--report-out=<path>` the machine-readable RunReport
/// JSON. Both default off, so the measured runs stay untraced.
struct ObsOptions {
  std::string trace_out;
  std::string report_out;

  [[nodiscard]] bool enabled() const noexcept {
    return !trace_out.empty() || !report_out.empty();
  }
};

/// Strip `--trace-out=...` / `--report-out=...` (also the two-token
/// `--flag value` spelling) from argv so the binary's own parsing — or
/// google-benchmark's — never sees them.
[[nodiscard]] inline ObsOptions consume_obs_options(int& argc, char** argv) {
  ObsOptions options;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto match = [&](const std::string& flag,
                           std::string& value) -> bool {
      if (arg.starts_with(flag + "=")) {
        value = arg.substr(flag.size() + 1);
        return true;
      }
      if (arg == flag && i + 1 < argc) {
        value = argv[++i];
        return true;
      }
      return false;
    };
    if (match("--trace-out", options.trace_out) ||
        match("--report-out", options.report_out)) {
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
  return options;
}

/// Re-run `spec` once with tracing on and write whichever outputs were
/// requested. Returns false (with a stderr note) if a file failed to open.
inline bool write_observability(const ObsOptions& options,
                                core::ScenarioSpec spec) {
  if (!options.enabled()) {
    return true;
  }
  spec.collect_trace = true;
  const core::ScenarioResult result = core::run_scenario(spec);
  bool ok = true;
  if (!options.trace_out.empty()) {
    if (obs::write_chrome_trace_file(*result.trace, options.trace_out)) {
      std::cout << "trace written to " << options.trace_out << "\n";
    } else {
      std::cerr << "failed to write trace to " << options.trace_out << "\n";
      ok = false;
    }
  }
  if (!options.report_out.empty()) {
    const obs::RunReport report = core::build_run_report(spec, result);
    if (obs::write_text_file(options.report_out, report.to_json())) {
      std::cout << "report written to " << options.report_out << "\n";
    } else {
      std::cerr << "failed to write report to " << options.report_out << "\n";
      ok = false;
    }
  }
  return ok;
}

/// Scenario shaping shared by the scenario-driven binaries (flag parity
/// with bench_fleet): `--preset=<name>` collapses the bench's default
/// scenario axis to one named spec preset (core::preset_by_name — the
/// multi-cell presets bring their own deployment shape, cell load, and
/// handover policy), `--duration-ms=<D>` overrides the per-run duration.
/// Both accept the two-token `--flag value` spelling and default off.
struct SpecOptions {
  std::string preset;
  std::int64_t duration_ms = 0;
};

/// Strip `--preset=...` / `--duration-ms=...` from argv, mirroring
/// consume_obs_options, so the two passes compose in either order.
[[nodiscard]] inline SpecOptions consume_spec_options(int& argc, char** argv) {
  SpecOptions options;
  std::string duration;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto match = [&](const std::string& flag,
                           std::string& value) -> bool {
      if (arg.starts_with(flag + "=")) {
        value = arg.substr(flag.size() + 1);
        return true;
      }
      if (arg == flag && i + 1 < argc) {
        value = argv[++i];
        return true;
      }
      return false;
    };
    if (match("--preset", options.preset) ||
        match("--duration-ms", duration)) {
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
  if (!duration.empty()) {
    options.duration_ms = std::strtol(duration.c_str(), nullptr, 10);
  }
  return options;
}

/// Exit with status 2 on any argv entry the consume_* passes left behind.
inline void reject_unknown_options(int argc, char** argv,
                                   std::string_view binary) {
  if (argc > 1) {
    std::cerr << binary << ": unknown option '" << argv[1] << "'\n";
    std::exit(2);
  }
}

/// One labelled spec per swept scenario.
struct LabelledSpec {
  std::string label;
  core::ScenarioSpec spec;
};

/// The scenario axis of a mobility-sweeping bench: by default one paper
/// preset per mobility in `default_mobilities` (at `default_duration_ms`
/// when positive, otherwise each preset's own duration); `--preset`
/// replaces the whole axis with the named preset and `--duration-ms`
/// overrides the duration either way.
[[nodiscard]] inline std::vector<LabelledSpec> scenario_axis(
    const SpecOptions& options,
    std::initializer_list<core::MobilityScenario> default_mobilities,
    std::int64_t default_duration_ms = 0) {
  const std::int64_t duration_ms =
      options.duration_ms > 0 ? options.duration_ms : default_duration_ms;
  const auto with_duration = [&](core::ScenarioSpec spec) {
    if (duration_ms > 0) {
      spec.duration = sim::Duration::milliseconds(duration_ms);
    }
    return core::SpecBuilder(std::move(spec)).build();
  };
  std::vector<LabelledSpec> axis;
  if (!options.preset.empty()) {
    axis.push_back(
        {options.preset, with_duration(core::preset_by_name(options.preset))});
    return axis;
  }
  for (const core::MobilityScenario mobility : default_mobilities) {
    axis.push_back({std::string(core::to_string(mobility)),
                    with_duration(core::preset::paper(mobility))});
  }
  return axis;
}

/// Repetition seeds used across benches (arbitrary but fixed).
[[nodiscard]] inline std::vector<std::uint64_t> seeds(std::size_t n) {
  std::vector<std::uint64_t> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(1000 + 7919 * i);  // spread out; derive_seed decorrelates
  }
  return out;
}

/// Aggregated protocol outcomes over a batch of scenario runs.
struct Aggregate {
  SuccessRate handover_success;       ///< completed handovers / attempts
  SuccessRate soft_fraction;          ///< soft / completed
  SuccessRate aligned_at_completion;  ///< Fig. 2c criterion per handover
  SampleSet interruption_ms;          ///< successful handovers only
  SampleSet alignment_fraction;       ///< per run: time-aligned fraction
  SampleSet rach_attempts;

  void absorb(const core::ScenarioResult& result) {
    for (const auto& h : result.handovers) {
      handover_success.record(h.success);
      if (h.success) {
        soft_fraction.record(h.type == net::HandoverType::kSoft);
        aligned_at_completion.record(h.beam_aligned_at_completion);
        interruption_ms.add(h.interruption().ms());
        rach_attempts.add(static_cast<double>(h.rach_attempts));
      }
    }
    if (!result.alignment_gap_db.empty()) {
      // The paper's criterion: alignment maintained *until the handover
      // concluded* (post-handover tracking of whatever neighbour remains
      // is a different, often hopeless, task and would pollute the
      // metric).
      alignment_fraction.add(result.alignment_until_first_handover());
    }
  }
};

/// Run one spec across `run_seeds`, aggregating outcomes.
[[nodiscard]] inline Aggregate run_batch(
    core::ScenarioSpec spec, const std::vector<std::uint64_t>& run_seeds) {
  Aggregate agg;
  for (const std::uint64_t seed : run_seeds) {
    spec.seed = seed;
    agg.absorb(core::run_scenario(spec));
  }
  return agg;
}

/// Parallel run_batch: shards the seeds over fleet::parallel_map's thread
/// pool and absorbs the per-run results in seed order once every worker
/// has joined. Each run is a pure function of (spec, seed) and absorption
/// order is the only aggregation-order effect, so the returned Aggregate
/// is bit-identical to the serial run_batch for the same seed list
/// (pinned by tests/core/test_batch_runner.cpp). `n_threads == 0` uses
/// the hardware concurrency.
[[nodiscard]] inline Aggregate run_batch_parallel(
    const core::ScenarioSpec& spec,
    const std::vector<std::uint64_t>& run_seeds, unsigned n_threads = 0) {
  const std::vector<core::ScenarioResult> results = fleet::parallel_map(
      run_seeds.size(), n_threads, [&](std::size_t i) {
        core::ScenarioSpec run_spec = spec;
        run_spec.seed = run_seeds[i];
        return core::run_scenario(run_spec);
      });
  Aggregate agg;
  for (const core::ScenarioResult& result : results) {
    agg.absorb(result);
  }
  return agg;
}

inline void print_header(std::string_view title, std::string_view paper_ref) {
  std::cout << "\n=== " << title << " ===\n"
            << "reproduces: " << paper_ref << "\n\n";
}

/// "62.5% [55.1, 69.3]" — rate with its Wilson 95% interval.
[[nodiscard]] inline std::string rate_with_ci(const SuccessRate& r) {
  const auto [lo, hi] = r.wilson95();
  return format_double(100.0 * r.rate(), 1) + "% [" +
         format_double(100.0 * lo, 1) + ", " + format_double(100.0 * hi, 1) +
         "]";
}

}  // namespace st::bench
