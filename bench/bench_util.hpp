// Shared helpers for the benchmark harness.
//
// Every bench binary regenerates one table/figure of the paper's
// evaluation (see DESIGN.md §4) and prints the rows/series the paper
// reports. All runs are seeded; rerunning a binary reproduces its output
// bit for bit.
#pragma once

#include <cstdint>
#include <iostream>
#include <vector>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/scenario.hpp"

namespace st::bench {

/// Repetition seeds used across benches (arbitrary but fixed).
[[nodiscard]] inline std::vector<std::uint64_t> seeds(std::size_t n) {
  std::vector<std::uint64_t> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(1000 + 7919 * i);  // spread out; derive_seed decorrelates
  }
  return out;
}

/// Aggregated protocol outcomes over a batch of scenario runs.
struct Aggregate {
  SuccessRate handover_success;       ///< completed handovers / attempts
  SuccessRate soft_fraction;          ///< soft / completed
  SuccessRate aligned_at_completion;  ///< Fig. 2c criterion per handover
  SampleSet interruption_ms;          ///< successful handovers only
  SampleSet alignment_fraction;       ///< per run: time-aligned fraction
  SampleSet rach_attempts;

  void absorb(const core::ScenarioResult& result) {
    for (const auto& h : result.handovers) {
      handover_success.record(h.success);
      if (h.success) {
        soft_fraction.record(h.type == net::HandoverType::kSoft);
        aligned_at_completion.record(h.beam_aligned_at_completion);
        interruption_ms.add(h.interruption().ms());
        rach_attempts.add(static_cast<double>(h.rach_attempts));
      }
    }
    if (!result.alignment_gap_db.empty()) {
      // The paper's criterion: alignment maintained *until the handover
      // concluded* (post-handover tracking of whatever neighbour remains
      // is a different, often hopeless, task and would pollute the
      // metric).
      alignment_fraction.add(result.alignment_until_first_handover());
    }
  }
};

/// Run one configuration across `run_seeds`, aggregating outcomes.
[[nodiscard]] inline Aggregate run_batch(
    core::ScenarioConfig config, const std::vector<std::uint64_t>& run_seeds) {
  Aggregate agg;
  for (const std::uint64_t seed : run_seeds) {
    config.seed = seed;
    agg.absorb(core::run_scenario(config));
  }
  return agg;
}

inline void print_header(std::string_view title, std::string_view paper_ref) {
  std::cout << "\n=== " << title << " ===\n"
            << "reproduces: " << paper_ref << "\n\n";
}

/// "62.5% [55.1, 69.3]" — rate with its Wilson 95% interval.
[[nodiscard]] inline std::string rate_with_ci(const SuccessRate& r) {
  const auto [lo, hi] = r.wilson95();
  return format_double(100.0 * r.rate(), 1) + "% [" +
         format_double(100.0 * lo, 1) + ", " + format_double(100.0 * hi, 1) +
         "]";
}

}  // namespace st::bench
