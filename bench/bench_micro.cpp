// E7 — micro-benchmarks of the hot paths (google-benchmark).
//
// These are throughput sanity checks, not paper results: the protocol's
// decisions are driven by RSS updates, codebook gain lookups, channel
// evaluations, and simulator event dispatch — all of which must be cheap
// enough that a 30 s scenario with millisecond-scale events runs in well
// under a second.
#include <benchmark/benchmark.h>

#include "core/rss_tracker.hpp"
#include "net/timing.hpp"
#include "phy/channel.hpp"
#include "phy/codebook.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace st;
using namespace st::sim::literals;

void BM_RssTrackerAddSample(benchmark::State& state) {
  core::RssTracker tracker(core::RssTrackerConfig{});
  tracker.select_beam(3, -60.0);
  double rss = -60.0;
  for (auto _ : state) {
    rss = rss < -70.0 ? -60.0 : rss - 0.01;
    tracker.add_sample(rss);
    benchmark::DoNotOptimize(tracker.drop_detected());
  }
}
BENCHMARK(BM_RssTrackerAddSample);

void BM_GaussianGainLookup(benchmark::State& state) {
  const phy::GaussianPattern pattern(deg_to_rad(20.0));
  double theta = -3.0;
  for (auto _ : state) {
    theta += 0.001;
    if (theta > 3.0) {
      theta = -3.0;
    }
    benchmark::DoNotOptimize(pattern.gain_dbi(theta));
  }
}
BENCHMARK(BM_GaussianGainLookup);

void BM_CodebookBestBeam(benchmark::State& state) {
  const phy::Codebook cb =
      phy::Codebook::from_beamwidth_deg(static_cast<double>(state.range(0)));
  double az = -3.0;
  for (auto _ : state) {
    az += 0.01;
    if (az > 3.0) {
      az = -3.0;
    }
    benchmark::DoNotOptimize(cb.best_beam_for(az));
  }
}
BENCHMARK(BM_CodebookBestBeam)->Arg(20)->Arg(60);

void BM_ChannelEvaluation(benchmark::State& state) {
  phy::ChannelConfig config;
  config.multipath.reflector_count = static_cast<unsigned>(state.range(0));
  const phy::Channel channel(config, {0.0, 0.0, 0.0}, {30.0, 10.0, 0.0},
                             60_s, 1);
  const phy::Codebook cb = phy::Codebook::from_beamwidth_deg(20.0);
  Pose tx;
  Pose rx;
  rx.position = {30.0, 10.0, 0.0};
  std::int64_t t_ns = 0;
  for (auto _ : state) {
    t_ns += 1'000'000;
    rx.position.x += 1e-4;
    benchmark::DoNotOptimize(channel.rx_power_dbm(
        tx, cb.beam(0), rx, cb.beam(9), sim::Time::from_ns(t_ns), 13.0));
  }
}
BENCHMARK(BM_ChannelEvaluation)->Arg(0)->Arg(3)->Arg(8);

void BM_FrameScheduleNextSsb(benchmark::State& state) {
  const net::FrameSchedule schedule(net::FrameConfig{}, 7_ms);
  sim::Time t = sim::Time::zero();
  for (auto _ : state) {
    const net::SsbSlot slot = schedule.next_ssb(t);
    t = slot.start + 1_ns;
    benchmark::DoNotOptimize(slot);
  }
}
BENCHMARK(BM_FrameScheduleNextSsb);

void BM_SimulatorEventDispatch(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulator simulator;
    constexpr int kEvents = 1000;
    int fired = 0;
    for (int i = 0; i < kEvents; ++i) {
      simulator.schedule_at(sim::Time::from_ns(i * 1000), [&fired] { ++fired; });
    }
    state.ResumeTiming();
    simulator.run_until(sim::Time::from_ns(kEvents * 1000));
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorEventDispatch);

}  // namespace

BENCHMARK_MAIN();
