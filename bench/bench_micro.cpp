// E7 — micro-benchmarks of the hot paths (google-benchmark).
//
// These are throughput sanity checks, not paper results: the protocol's
// decisions are driven by RSS updates, codebook gain lookups, channel
// evaluations, and simulator event dispatch — all of which must be cheap
// enough that a 30 s scenario with millisecond-scale events runs in well
// under a second.
//
// The BM_BestBeamPair* pair measures the channel-sweep fast path against
// the naive per-pair formulation over the same codebooks; the snapshot
// kernel must hold a >= 5x advantage (tracked across PRs via the JSON).
//
// Besides the stdout table, the binary writes a machine-readable
// `BENCH_micro.json` (op name -> ns/op, plus items/s throughput where a
// benchmark reports it) into the working directory so the perf
// trajectory is diffable across PRs.
#include <benchmark/benchmark.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/rss_tracker.hpp"
#include "core/scenario.hpp"
#include "net/timing.hpp"
#include "phy/channel.hpp"
#include "phy/codebook.hpp"
#include "phy/path_snapshot.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace st;
using namespace st::sim::literals;

void BM_RssTrackerAddSample(benchmark::State& state) {
  core::RssTracker tracker(core::RssTrackerConfig{});
  tracker.select_beam(3, -60.0);
  double rss = -60.0;
  for (auto _ : state) {
    rss = rss < -70.0 ? -60.0 : rss - 0.01;
    tracker.add_sample(rss);
    benchmark::DoNotOptimize(tracker.drop_detected());
  }
}
BENCHMARK(BM_RssTrackerAddSample);

void BM_GaussianGainLookup(benchmark::State& state) {
  const phy::GaussianPattern pattern(deg_to_rad(20.0));
  double theta = -3.0;
  for (auto _ : state) {
    theta += 0.001;
    if (theta > 3.0) {
      theta = -3.0;
    }
    benchmark::DoNotOptimize(pattern.gain_dbi(theta));
  }
}
BENCHMARK(BM_GaussianGainLookup);

void BM_CodebookBestBeam(benchmark::State& state) {
  const phy::Codebook cb =
      phy::Codebook::from_beamwidth_deg(static_cast<double>(state.range(0)));
  double az = -3.0;
  for (auto _ : state) {
    az += 0.01;
    if (az > 3.0) {
      az = -3.0;
    }
    benchmark::DoNotOptimize(cb.best_beam_for(az));
  }
}
BENCHMARK(BM_CodebookBestBeam)->Arg(20)->Arg(60);

void BM_ChannelEvaluation(benchmark::State& state) {
  phy::ChannelConfig config;
  config.multipath.reflector_count = static_cast<unsigned>(state.range(0));
  const phy::Channel channel(config, {0.0, 0.0, 0.0}, {30.0, 10.0, 0.0},
                             60_s, 1);
  const phy::Codebook cb = phy::Codebook::from_beamwidth_deg(20.0);
  Pose tx;
  Pose rx;
  rx.position = {30.0, 10.0, 0.0};
  std::int64_t t_ns = 0;
  for (auto _ : state) {
    t_ns += 1'000'000;
    rx.position.x += 1e-4;
    benchmark::DoNotOptimize(channel.rx_power_dbm(
        tx, cb.beam(0), rx, cb.beam(9), sim::Time::from_ns(t_ns), 13.0));
  }
}
BENCHMARK(BM_ChannelEvaluation)->Arg(0)->Arg(3)->Arg(8);

/// Shared fixture for the sweep benchmarks: the calibrated operating
/// point's BS codebook (45 deg x 8) against the paper's 20 deg x 18 UE
/// codebook — 144 beam pairs per exhaustive sweep.
struct SweepFixture {
  phy::ChannelConfig config{};
  phy::Channel channel;
  phy::Codebook bs_codebook = phy::Codebook::from_beamwidth_deg(45.0);
  phy::Codebook ue_codebook = phy::Codebook::from_beamwidth_deg(20.0);
  Pose tx;
  Pose rx;

  SweepFixture()
      : channel(config, {0.0, 0.0, 0.0}, {30.0, 10.0, 0.0}, 60_s, 1) {
    rx.position = {30.0, 10.0, 0.0};
  }
};

void BM_BestBeamPairNaive(benchmark::State& state) {
  SweepFixture f;
  std::int64_t t_ns = 0;
  for (auto _ : state) {
    t_ns += 1'000'000;
    f.rx.position.x += 1e-4;
    benchmark::DoNotOptimize(
        f.channel.best_beam_pair_naive(f.tx, f.bs_codebook, f.rx,
                                       f.ue_codebook,
                                       sim::Time::from_ns(t_ns), 13.0));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(f.bs_codebook.size() * f.ue_codebook.size()));
}
BENCHMARK(BM_BestBeamPairNaive);

void BM_BestBeamPairSnapshot(benchmark::State& state) {
  SweepFixture f;
  std::int64_t t_ns = 0;
  for (auto _ : state) {
    t_ns += 1'000'000;
    f.rx.position.x += 1e-4;
    benchmark::DoNotOptimize(
        f.channel.best_beam_pair(f.tx, f.bs_codebook, f.rx, f.ue_codebook,
                                 sim::Time::from_ns(t_ns), 13.0));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(f.bs_codebook.size() * f.ue_codebook.size()));
}
BENCHMARK(BM_BestBeamPairSnapshot);

void BM_SnapshotBuild(benchmark::State& state) {
  SweepFixture f;
  phy::PathSnapshot snapshot;
  std::int64_t t_ns = 0;
  for (auto _ : state) {
    t_ns += 1'000'000;
    f.rx.position.x += 1e-4;
    f.channel.make_snapshot(f.tx, f.rx, sim::Time::from_ns(t_ns), 13.0,
                            snapshot);
    benchmark::DoNotOptimize(snapshot.base_linear.data());
  }
}
BENCHMARK(BM_SnapshotBuild);

void BM_SnapshotUpdateWalk(benchmark::State& state) {
  // The incremental rebuild on a walking trajectory: position deltas
  // invalidate geometry but the slow shadowing/blockage processes mostly
  // carry over between 1 ms ticks.
  SweepFixture f;
  phy::PathSnapshot snapshot;
  phy::SnapshotReuse reuse;
  std::int64_t t_ns = 0;
  for (auto _ : state) {
    t_ns += 1'000'000;
    f.rx.position.x += 1e-4;
    f.channel.update_snapshot(f.tx, f.rx, sim::Time::from_ns(t_ns), 13.0,
                              snapshot, &reuse, nullptr);
    benchmark::DoNotOptimize(snapshot.base_linear.data());
  }
}
BENCHMARK(BM_SnapshotUpdateWalk);

void BM_SnapshotUpdateRotation(benchmark::State& state) {
  // Rotation-only motion: geometry, shadowing, and blockage all reuse;
  // only the body-frame azimuths and gain products are recomputed.
  SweepFixture f;
  phy::PathSnapshot snapshot;
  phy::SnapshotReuse reuse;
  std::int64_t t_ns = 0;
  double yaw = 0.0;
  for (auto _ : state) {
    t_ns += 1'000'000;
    yaw += 2e-3;
    f.rx.orientation = Quaternion::from_yaw(yaw);
    f.channel.update_snapshot(f.tx, f.rx, sim::Time::from_ns(t_ns), 13.0,
                              snapshot, &reuse, nullptr);
    benchmark::DoNotOptimize(snapshot.base_linear.data());
  }
}
BENCHMARK(BM_SnapshotUpdateRotation);

void BM_BestBeamPairIncremental(benchmark::State& state) {
  // The full fleet fast path per (UE, cell) step: incremental snapshot
  // refresh plus the vectorized 144-pair sweep.
  SweepFixture f;
  phy::PathSnapshot snapshot;
  phy::SnapshotReuse reuse;
  std::int64_t t_ns = 0;
  for (auto _ : state) {
    t_ns += 1'000'000;
    f.rx.position.x += 1e-4;
    f.channel.update_snapshot(f.tx, f.rx, sim::Time::from_ns(t_ns), 13.0,
                              snapshot, &reuse, nullptr);
    benchmark::DoNotOptimize(
        phy::sweep_beam_pairs(snapshot, f.bs_codebook, f.ue_codebook));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(f.bs_codebook.size() * f.ue_codebook.size()));
}
BENCHMARK(BM_BestBeamPairIncremental);

void BM_SweepRxBeamsKernel(benchmark::State& state) {
  SweepFixture f;
  phy::PathSnapshot snapshot;
  f.channel.make_snapshot(f.tx, f.rx, sim::Time::from_ns(1'000'000), 13.0,
                          snapshot);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        phy::sweep_rx_beams(snapshot, f.bs_codebook.beam(0), f.ue_codebook));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.ue_codebook.size()));
}
BENCHMARK(BM_SweepRxBeamsKernel);

void BM_FrameScheduleNextSsb(benchmark::State& state) {
  const net::FrameSchedule schedule(net::FrameConfig{}, 7_ms);
  sim::Time t = sim::Time::zero();
  for (auto _ : state) {
    const net::SsbSlot slot = schedule.next_ssb(t);
    t = slot.start + 1_ns;
    benchmark::DoNotOptimize(slot);
  }
}
BENCHMARK(BM_FrameScheduleNextSsb);

void BM_SimulatorEventDispatch(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulator simulator;
    constexpr int kEvents = 1000;
    int fired = 0;
    for (int i = 0; i < kEvents; ++i) {
      simulator.schedule_at(sim::Time::from_ns(i * 1000), [&fired] { ++fired; });
    }
    state.ResumeTiming();
    simulator.run_until(sim::Time::from_ns(kEvents * 1000));
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorEventDispatch);

/// Console reporter that also collects every run and dumps a compact
/// machine-readable summary (op name -> ns/op, plus items/s where
/// reported) to BENCH_micro.json on finalize.
class JsonTeeReporter final : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) {
        continue;
      }
      Entry entry;
      entry.name = run.benchmark_name();
      entry.ns_per_op = run.GetAdjustedRealTime() * to_ns(run.time_unit);
      const auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) {
        entry.items_per_second = it->second;
        entry.has_items = true;
      }
      entries_.push_back(entry);
    }
    ConsoleReporter::ReportRuns(runs);
  }

  /// Extra top-level JSON members ("\"key\": {...}" fragments) appended
  /// after the benchmark array — carries the snapshot-cache stats.
  void add_extra(std::string fragment) {
    extras_.push_back(std::move(fragment));
  }

  void Finalize() override {
    ConsoleReporter::Finalize();
    std::ofstream out("BENCH_micro.json");
    out << "{\n  \"benchmarks\": [\n";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      out << "    {\"name\": \"" << e.name
          << "\", \"ns_per_op\": " << e.ns_per_op;
      if (e.has_items) {
        out << ", \"items_per_second\": " << e.items_per_second;
      }
      out << "}" << (i + 1 < entries_.size() ? "," : "") << "\n";
    }
    out << "  ]";
    for (const std::string& extra : extras_) {
      out << ",\n  " << extra;
    }
    out << "\n}\n";
  }

 private:
  struct Entry {
    std::string name;
    double ns_per_op = 0.0;
    double items_per_second = 0.0;
    bool has_items = false;
  };

  static double to_ns(benchmark::TimeUnit unit) noexcept {
    switch (unit) {
      case benchmark::kNanosecond:
        return 1.0;
      case benchmark::kMicrosecond:
        return 1e3;
      case benchmark::kMillisecond:
        return 1e6;
      case benchmark::kSecond:
        return 1e9;
    }
    return 1.0;
  }

  std::vector<Entry> entries_;
  std::vector<std::string> extras_;
};

/// Snapshot-cache effectiveness on a representative scenario (2 s walk):
/// the cache is what turns the metric tick's ground-truth sweeps from a
/// per-query 144-pair evaluation into an epoch lookup, so its hit rate is
/// tracked in the JSON alongside the kernel timings it protects.
std::string snapshot_cache_fragment() {
  const core::ScenarioSpec spec = core::SpecBuilder(core::preset::paper_walk())
                                      .duration(2'000_ms)
                                      .build();
  const core::ScenarioResult result = core::run_scenario(spec);
  const net::SnapshotCacheStats& cache = result.snapshot_cache;
  std::ostringstream out;
  out << "\"snapshot_cache\": {\"hits\": " << cache.hits
      << ", \"refreshes\": " << cache.refreshes
      << ", \"cold_misses\": " << cache.cold_misses
      << ", \"invalidations\": " << cache.invalidations
      << ", \"pair_sweeps\": " << cache.pair_sweeps
      << ", \"rx_sweeps\": " << cache.rx_sweeps
      << ", \"full_builds\": " << cache.full_builds
      << ", \"incremental_builds\": " << cache.incremental_builds
      << ", \"geometry_reuses\": " << cache.geometry_reuses
      << ", \"shadow_reuses\": " << cache.shadow_reuses
      << ", \"blockage_reuses\": " << cache.blockage_reuses
      << ", \"azimuth_reuses\": " << cache.azimuth_reuses
      << ", \"hit_rate\": " << cache.hit_rate() << "}";
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  JsonTeeReporter reporter;
  reporter.add_extra(snapshot_cache_fragment());
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
