// E10 — radio measurement budget (extension reproducing a §2 claim).
//
// "The mobile must therefore utilize its radio resources for measurements
// efficiently … It needs to be done with minimal resource usage." This
// bench counts every SSB listening attempt the mobile makes (its radio
// measurement budget) and compares policies on outcome per unit of
// budget: Silent Tracker with the paper's adjacent probing, the
// full-re-sweep ablation, and the reactive baseline that measures nothing
// until the serving link dies.
#include <iostream>

#include "bench_util.hpp"

namespace {

using namespace st;
using namespace st::sim::literals;

}  // namespace

int main() {
  st::bench::print_header(
      "E10: radio measurement budget per policy",
      "§2 claim — beam management for soft handover with minimal "
      "measurement resource usage");

  const auto run_seeds = st::bench::seeds(12);

  struct Variant {
    const char* name;
    core::ProtocolKind protocol;
    core::ProbePolicy policy;
  };
  const Variant variants[] = {
      {"silent_tracker / adjacent (paper)", core::ProtocolKind::kSilentTracker,
       core::ProbePolicy::kAdjacent},
      {"silent_tracker / full re-sweep", core::ProtocolKind::kSilentTracker,
       core::ProbePolicy::kFullSweep},
      {"reactive (no pre-HO measurement)", core::ProtocolKind::kReactive,
       core::ProbePolicy::kAdjacent},
  };

  Table table({"scenario", "policy", "SSB obs/s", "time aligned %",
               "soft [CI]", "interruption p50 ms"});

  for (const auto mobility : {core::MobilityScenario::kHumanWalk,
                              core::MobilityScenario::kRotation}) {
    for (const Variant& variant : variants) {
      core::ScenarioSpec spec = core::SpecBuilder(core::preset::paper(mobility))
                                    .duration(20'000_ms)
                                    .build();
      core::UeProfile& ue = spec.ues.front();
      ue.protocol = variant.protocol;
      ue.tracker.probe_policy = variant.policy;

      st::bench::Aggregate agg;
      RunningStats obs_per_s;
      for (const std::uint64_t seed : run_seeds) {
        spec.seed = seed;
        const core::ScenarioResult result = core::run_scenario(spec);
        agg.absorb(result);
        obs_per_s.add(static_cast<double>(result.ssb_observations) /
                      spec.duration.seconds());
      }

      table.row()
          .cell(std::string(core::to_string(mobility)))
          .cell(variant.name)
          .cell(obs_per_s.mean(), 1)
          .cell(agg.alignment_fraction.empty()
                    ? std::string("-")
                    : format_double(100.0 * agg.alignment_fraction.mean(), 1))
          .cell(st::bench::rate_with_ci(agg.soft_fraction))
          .cell(agg.interruption_ms.empty()
                    ? std::string("-")
                    : format_double(agg.interruption_ms.median(), 1));
    }
  }
  table.print(std::cout);

  std::cout << "\nShape check: the paper's adjacent policy spends less than "
               "2x the budget of the reactive baseline (which measures only "
               "the serving cell) yet converts its hard handovers to soft. "
               "The full re-sweep's cost is not extra slots but *time*: each "
               "probe round monopolises the measurement schedule for a full "
               "codebook of bursts, so tracking staleness — not slot count — "
               "is what collapses under fast motion.\n";
  return 0;
}
