// E13 — service load bench (extension).
//
// Drives a real stserved over its Unix socket — by default an in-process
// serve::Server on a private socket, or an external daemon via --socket —
// and measures the serving plane itself rather than the physics: jobs/sec,
// client-observed completion latency (p50/p99/p999), and the shed rate
// under overload. Jobs are deliberately tiny (short sim duration, one UE)
// so the numbers are dominated by queueing, scheduling, and framing, not
// by fleet compute.
//
// Two phases:
//  * closed loop — C client threads submit-and-wait back to back for S
//    seconds, with one telemetry subscriber attached (the live-stats
//    stream rides along under load, as it would in production);
//  * open loop — one client paces submissions at a fixed rate R for S
//    seconds regardless of completions. Pick R above the service's
//    capacity (small queue, one worker) and the bounded queue must shed;
//    the shed rate and the server-side e2e latency digest are the
//    overload story.
//
//   ./bench_serve [--socket PATH] [--workers N] [--queue-capacity N]
//                 [--fleet-threads N] [--clients C] [--seconds S]
//                 [--open-rate R] [--duration-ms D] [--ues U]
//                 [--out BENCH_serve.json]
//
// Writes BENCH_serve.json (BENCH_micro schema: a "benchmarks" array plus
// named extra blocks, including the server's own stats response with its
// provenance block).
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.hpp"
#include "common/thread_annotations.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

namespace {

using st::json::Value;
using Clock = std::chrono::steady_clock;

struct Options {
  std::string socket;  // empty = in-process server
  std::size_t workers = 2;
  std::size_t queue_capacity = 8;
  unsigned fleet_threads = 1;
  std::size_t clients = 4;
  double seconds = 2.0;
  double open_rate = 200.0;  // jobs/s; 0 skips the open-loop phase
  std::int64_t duration_ms = 200;
  std::size_t ues = 1;
  std::string out = "BENCH_serve.json";
};

[[nodiscard]] Value tiny_job(const Options& opt, std::uint64_t seed) {
  Value overrides = Value::object();
  overrides.set("duration_ms",
                Value::number(static_cast<double>(opt.duration_ms)));
  overrides.set("n_ues", Value::unsigned_integer(opt.ues));
  Value job = Value::object();
  job.set("preset", Value::string("paper_walk"));
  job.set("seed", Value::unsigned_integer(seed));
  job.set("overrides", std::move(overrides));
  return job;
}

[[nodiscard]] bool response_ok(const Value& response) {
  const Value* ok = response.find("ok");
  return ok != nullptr && ok->is_bool() && ok->as_bool();
}

[[nodiscard]] bool is_shed(const Value& response) {
  const Value* error = response.find("error");
  if (error == nullptr) {
    return false;
  }
  const Value* code = error->find("code");
  return code != nullptr && code->string_or("") == "shed";
}

[[nodiscard]] Value latency_digest(const st::SampleSet& samples) {
  Value v = Value::object();
  v.set("count", Value::unsigned_integer(samples.count()));
  if (!samples.empty()) {
    v.set("mean", Value::number(samples.mean()));
    v.set("p50", Value::number(samples.percentile(50.0)));
    v.set("p99", Value::number(samples.percentile(99.0)));
    v.set("p999", Value::number(samples.percentile(99.9)));
    v.set("max", Value::number(samples.max()));
  }
  return v;
}

struct ClosedLoopResult {
  std::uint64_t done = 0;
  std::uint64_t shed = 0;
  std::uint64_t errors = 0;
  double wall_seconds = 0.0;
  st::SampleSet latency_ms;  // client-observed submit -> terminal
  std::uint64_t telemetry_frames = 0;
  std::uint64_t telemetry_dropped = 0;
};

ClosedLoopResult run_closed_loop(const Options& opt,
                                 const std::string& socket_path) {
  // The merge target shared by the subscriber and client threads; a named
  // struct so the result carries its capability annotation (locals cannot).
  struct Merge {
    st::Mutex mutex;
    ClosedLoopResult result ST_GUARDED_BY(mutex);
  } merge;

  // A live subscriber rides along: the stats/event stream is part of the
  // serving plane's steady-state cost, so the bench keeps one attached.
  std::atomic<bool> stop_subscriber{false};
  std::thread subscriber([&] {
    st::serve::Client sub;
    if (!sub.connect(socket_path) || !response_ok(sub.subscribe("all", 200))) {
      return;
    }
    std::uint64_t frames = 0;
    std::uint64_t dropped = 0;
    bool closed = false;
    while (!stop_subscriber.load(std::memory_order_acquire) && !closed) {
      const auto frame = sub.next_frame(50, &closed);
      if (frame.has_value()) {
        ++frames;
        const Value* d = frame->find("dropped");
        dropped += d == nullptr ? 0 : d->u64_or(0);
      }
    }
    const st::MutexLock lock(merge.mutex);
    merge.result.telemetry_frames = frames;
    merge.result.telemetry_dropped = dropped;
  });

  const auto start = Clock::now();
  const auto deadline =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(opt.seconds));
  std::vector<std::thread> threads;
  threads.reserve(opt.clients);
  for (std::size_t c = 0; c < opt.clients; ++c) {
    threads.emplace_back([&, c] {
      st::serve::Client client;
      if (!client.connect(socket_path)) {
        return;
      }
      st::SampleSet latencies;
      std::uint64_t done = 0;
      std::uint64_t shed = 0;
      std::uint64_t errors = 0;
      std::uint64_t seed = 1000 * (c + 1);
      while (Clock::now() < deadline) {
        const auto t0 = Clock::now();
        Value submitted = client.submit(tiny_job(opt, seed++));
        if (!response_ok(submitted)) {
          if (is_shed(submitted)) {
            ++shed;
          } else {
            ++errors;
          }
          continue;
        }
        const Value* id = submitted.find("id");
        const auto final_status =
            client.wait(id->as_u64(), /*timeout_ms=*/60'000,
                        /*poll_interval_ms=*/2);
        if (!final_status.has_value()) {
          ++errors;
          continue;
        }
        const Value* state = final_status->find("state");
        if (state != nullptr && state->string_or("") == "done") {
          ++done;
          latencies.add(std::chrono::duration<double, std::milli>(
                            Clock::now() - t0)
                            .count());
        } else {
          ++errors;
        }
      }
      const st::MutexLock lock(merge.mutex);
      merge.result.done += done;
      merge.result.shed += shed;
      merge.result.errors += errors;
      merge.result.latency_ms.add_all(latencies.samples());
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  const double wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  stop_subscriber.store(true, std::memory_order_release);
  subscriber.join();
  // Everything has joined; the lock is uncontended but keeps the guarded
  // access capability-clean.
  const st::MutexLock lock(merge.mutex);
  merge.result.wall_seconds = wall_seconds;
  return merge.result;
}

struct OpenLoopResult {
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;
  std::uint64_t shed = 0;
  std::uint64_t errors = 0;
  double submit_seconds = 0.0;
  double settle_seconds = 0.0;
};

OpenLoopResult run_open_loop(const Options& opt,
                             const std::string& socket_path) {
  OpenLoopResult result;
  st::serve::Client client;
  if (!client.connect(socket_path)) {
    result.errors = 1;
    return result;
  }
  const auto interval = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(1.0 / opt.open_rate));
  const auto start = Clock::now();
  const auto deadline =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(opt.seconds));
  auto next_submit = start;
  std::uint64_t seed = 500'000;
  std::vector<std::uint64_t> accepted_ids;
  while (Clock::now() < deadline) {
    std::this_thread::sleep_until(next_submit);
    next_submit += interval;
    ++result.submitted;
    Value submitted = client.submit(tiny_job(opt, seed++));
    if (response_ok(submitted)) {
      ++result.accepted;
      accepted_ids.push_back(submitted.find("id")->as_u64());
    } else if (is_shed(submitted)) {
      ++result.shed;
    } else {
      ++result.errors;
    }
  }
  result.submit_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();

  // Let the backlog settle so the e2e digest covers every accepted job.
  const auto settle_start = Clock::now();
  for (const std::uint64_t id : accepted_ids) {
    if (!client.wait(id, /*timeout_ms=*/60'000, /*poll_interval_ms=*/5)
             .has_value()) {
      ++result.errors;
    }
  }
  result.settle_seconds =
      std::chrono::duration<double>(Clock::now() - settle_start).count();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "bench_serve: missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      opt.socket = next_value();
    } else if (arg == "--workers") {
      opt.workers = std::strtoull(next_value().c_str(), nullptr, 10);
    } else if (arg == "--queue-capacity") {
      opt.queue_capacity = std::strtoull(next_value().c_str(), nullptr, 10);
    } else if (arg == "--fleet-threads") {
      opt.fleet_threads =
          static_cast<unsigned>(std::strtoul(next_value().c_str(), nullptr, 10));
    } else if (arg == "--clients") {
      opt.clients = std::strtoull(next_value().c_str(), nullptr, 10);
    } else if (arg == "--seconds") {
      opt.seconds = std::strtod(next_value().c_str(), nullptr);
    } else if (arg == "--open-rate") {
      opt.open_rate = std::strtod(next_value().c_str(), nullptr);
    } else if (arg == "--duration-ms") {
      opt.duration_ms = std::strtol(next_value().c_str(), nullptr, 10);
    } else if (arg == "--ues") {
      opt.ues = std::strtoull(next_value().c_str(), nullptr, 10);
    } else if (arg == "--out") {
      opt.out = next_value();
    } else {
      std::cerr << "bench_serve: unknown option '" << arg << "'\n";
      return 2;
    }
  }

  std::cout << "E13: service load bench (jobs/sec, latency tail, shedding)\n";

  // Default: an in-process server on a private socket — the identical
  // daemon code path (accept thread, framing, workers), minus the fork.
  std::unique_ptr<st::serve::Server> server;
  std::string socket_path = opt.socket;
  if (socket_path.empty()) {
    st::serve::ServerConfig config;
    config.socket_path = "/tmp/st-bench-serve-" +
                         std::to_string(::getpid()) + ".sock";
    config.workers = opt.workers;
    config.queue_capacity = opt.queue_capacity;
    config.fleet_threads = opt.fleet_threads;
    server = std::make_unique<st::serve::Server>(config);
    try {
      server->start();
    } catch (const std::exception& e) {
      std::cerr << "bench_serve: " << e.what() << "\n";
      return 1;
    }
    socket_path = config.socket_path;
  }

  const ClosedLoopResult closed = run_closed_loop(opt, socket_path);
  const double closed_jps =
      closed.wall_seconds > 0.0
          ? static_cast<double>(closed.done) / closed.wall_seconds
          : 0.0;
  std::printf(
      "closed loop: %zu clients, %.1fs — %llu done (%.1f jobs/s), %llu "
      "shed, %llu errors\n",
      opt.clients, closed.wall_seconds,
      static_cast<unsigned long long>(closed.done), closed_jps,
      static_cast<unsigned long long>(closed.shed),
      static_cast<unsigned long long>(closed.errors));
  if (!closed.latency_ms.empty()) {
    std::printf("  latency ms: p50 %.2f  p99 %.2f  p999 %.2f  max %.2f\n",
                closed.latency_ms.percentile(50.0),
                closed.latency_ms.percentile(99.0),
                closed.latency_ms.percentile(99.9), closed.latency_ms.max());
  }
  std::printf("  telemetry stream: %llu frames, %llu dropped\n",
              static_cast<unsigned long long>(closed.telemetry_frames),
              static_cast<unsigned long long>(closed.telemetry_dropped));

  OpenLoopResult open;
  double open_jps = 0.0;
  if (opt.open_rate > 0.0) {
    open = run_open_loop(opt, socket_path);
    open_jps = open.submit_seconds + open.settle_seconds > 0.0
                   ? static_cast<double>(open.accepted) /
                         (open.submit_seconds + open.settle_seconds)
                   : 0.0;
    std::printf(
        "open loop: target %.0f jobs/s for %.1fs — %llu submitted, %llu "
        "accepted, %llu shed (%.1f%%), settle %.1fs\n",
        opt.open_rate, open.submit_seconds,
        static_cast<unsigned long long>(open.submitted),
        static_cast<unsigned long long>(open.accepted),
        static_cast<unsigned long long>(open.shed),
        open.submitted > 0 ? 100.0 * static_cast<double>(open.shed) /
                                 static_cast<double>(open.submitted)
                           : 0.0,
        open.settle_seconds);
  }

  // The server's own view: per-job histograms (queue_wait/run/e2e with
  // p999), shed rate, jobs/sec, and the provenance block.
  Value stats_response = Value::object();
  {
    st::serve::Client client;
    if (client.connect(socket_path)) {
      stats_response = client.stats();
    }
  }

  if (server != nullptr) {
    server->stop();
  }

  Value doc = Value::object();
  Value benchmarks = Value::array();
  {
    Value b = Value::object();
    b.set("name", Value::string("serve/closed_loop/clients:" +
                                std::to_string(opt.clients)));
    b.set("ns_per_op",
          Value::number(closed_jps > 0.0 ? 1e9 / closed_jps : 0.0));
    b.set("items_per_second", Value::number(closed_jps));
    benchmarks.push_back(std::move(b));
  }
  if (opt.open_rate > 0.0) {
    Value b = Value::object();
    b.set("name", Value::string("serve/open_loop/rate:" +
                                std::to_string(
                                    static_cast<long long>(opt.open_rate))));
    b.set("ns_per_op", Value::number(open_jps > 0.0 ? 1e9 / open_jps : 0.0));
    b.set("items_per_second", Value::number(open_jps));
    benchmarks.push_back(std::move(b));
  }
  doc.set("benchmarks", std::move(benchmarks));

  Value closed_block = Value::object();
  closed_block.set("clients", Value::unsigned_integer(opt.clients));
  closed_block.set("wall_seconds", Value::number(closed.wall_seconds));
  closed_block.set("done", Value::unsigned_integer(closed.done));
  closed_block.set("shed", Value::unsigned_integer(closed.shed));
  closed_block.set("errors", Value::unsigned_integer(closed.errors));
  closed_block.set("jobs_per_second", Value::number(closed_jps));
  closed_block.set("latency_ms", latency_digest(closed.latency_ms));
  closed_block.set("telemetry_frames",
                   Value::unsigned_integer(closed.telemetry_frames));
  closed_block.set("telemetry_dropped",
                   Value::unsigned_integer(closed.telemetry_dropped));
  doc.set("closed_loop", std::move(closed_block));

  if (opt.open_rate > 0.0) {
    Value open_block = Value::object();
    open_block.set("target_rate", Value::number(opt.open_rate));
    open_block.set("submitted", Value::unsigned_integer(open.submitted));
    open_block.set("accepted", Value::unsigned_integer(open.accepted));
    open_block.set("shed", Value::unsigned_integer(open.shed));
    open_block.set("errors", Value::unsigned_integer(open.errors));
    open_block.set(
        "shed_rate",
        Value::number(open.submitted > 0
                          ? static_cast<double>(open.shed) /
                                static_cast<double>(open.submitted)
                          : 0.0));
    open_block.set("submit_seconds", Value::number(open.submit_seconds));
    open_block.set("settle_seconds", Value::number(open.settle_seconds));
    open_block.set("jobs_per_second", Value::number(open_jps));
    doc.set("open_loop", std::move(open_block));
  }

  if (const Value* stats = stats_response.find("stats")) {
    // Server-side digests (queue_wait/run/e2e with p999), shed_rate,
    // telemetry counters, and the provenance block, verbatim.
    doc.set("server_stats", *stats);
  }

  std::ofstream out_file(opt.out);
  out_file << doc.dump() << "\n";
  if (!out_file) {
    std::cerr << "bench_serve: failed to write " << opt.out << "\n";
    return 1;
  }
  std::cout << "wrote " << opt.out
            << "\nShape check: the open loop's target rate exceeds "
               "capacity, so shed > 0 and the bounded queue holds the "
               "e2e tail; the closed loop stays shed-free.\n";
  return 0;
}
