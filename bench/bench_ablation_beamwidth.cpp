// E9 — mobile codebook beamwidth sweep (extension bridging Fig. 2a and
// Fig. 2c).
//
// Fig. 2a varies the mobile's beamwidth for *search*; this sweep carries
// the same axis through the whole protocol: narrower beams buy link
// budget (better detection, better cell-edge SNR) but cost sweep time
// (more beams to search) and tracking agility (boundaries crossed more
// often under the same motion). The paper's 20° choice sits where the
// budget gain still dominates.
#include <iostream>

#include "bench_util.hpp"

namespace {

using namespace st;
using namespace st::sim::literals;

}  // namespace

int main(int argc, char** argv) {
  const st::bench::ObsOptions obs = st::bench::consume_obs_options(argc, argv);
  const st::bench::SpecOptions spec_options =
      st::bench::consume_spec_options(argc, argv);
  st::bench::reject_unknown_options(argc, argv, "bench_ablation_beamwidth");

  st::bench::print_header(
      "E9: mobile beamwidth sweep across the full protocol",
      "extension — Fig. 2a's codebook axis carried through tracking and "
      "handover");

  const auto run_seeds = st::bench::seeds(12);
  const std::vector<st::bench::LabelledSpec> axis = st::bench::scenario_axis(
      spec_options,
      {core::MobilityScenario::kHumanWalk, core::MobilityScenario::kRotation},
      20'000);

  Table table({"scenario", "codebook", "time aligned %",
               "handover success [CI]", "soft [CI]", "interruption p50 ms",
               "rx switches/run"});

  for (const st::bench::LabelledSpec& scenario : axis) {
    for (const double beamwidth : {10.0, 15.0, 20.0, 30.0, 45.0, 60.0, 0.0}) {
      core::ScenarioSpec spec = scenario.spec;
      for (core::UeProfile& ue : spec.ues) {
        ue.ue_beamwidth_deg = beamwidth;
      }

      st::bench::Aggregate agg;
      RunningStats switches;
      for (const std::uint64_t seed : run_seeds) {
        spec.seed = seed;
        const core::ScenarioResult result = core::run_scenario(spec);
        agg.absorb(result);
        switches.add(static_cast<double>(
            result.counters.value("neighbour_rx_switches") +
            result.counters.value("serving_rx_switches")));
      }

      table.row()
          .cell(scenario.label)
          .cell(core::make_ue_codebook(beamwidth).description())
          .cell(agg.alignment_fraction.empty()
                    ? std::string("-")
                    : format_double(100.0 * agg.alignment_fraction.mean(), 1))
          .cell(st::bench::rate_with_ci(agg.handover_success))
          .cell(st::bench::rate_with_ci(agg.soft_fraction))
          .cell(agg.interruption_ms.empty()
                    ? std::string("-")
                    : format_double(agg.interruption_ms.median(), 1))
          .cell(switches.mean(), 1);
    }
  }
  table.print(std::cout);

  std::cout << "\nShape check: very narrow beams switch constantly (and "
               "suffer under rotation); wide beams and omni lose the link "
               "budget that cell-edge operation needs. The paper's 20 deg "
               "sits in the broad middle.\n";
  return st::bench::write_observability(obs, axis.front().spec) ? 0 : 1;
}
