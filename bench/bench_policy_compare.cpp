// E15 — head-to-head beam-management policies over the rate layer
// (extension).
//
// The tracker's probe/refine decision surface is a Strategy
// (core::BeamPolicy): the paper's adjacent-beam Silent Tracker rule, a
// hierarchical coarse-to-fine sweep (coarse stride then a refine round
// around the coarse winner, after Palacios et al.), and a blind
// switch-without-confirming baseline (after Gao et al.). This bench runs
// the three policies head to head across the paper scenarios plus the
// multi-cell grid, with the rate layer scoring every run: mean
// throughput from per-slot SINR -> CQI -> bits per RB, outage duration
// (SINR below threshold for at least the configured window), handover
// interruption, and tracking alignment.
//
//   ./bench_policy_compare [--preset NAME] [--duration-ms D] [--runs N]
//                          [--report-out report.json] [--trace-out t.json]
//
// --preset collapses the scenario axis to one named spec preset
// (paper_walk, grid_walk, ...); --duration-ms and --runs shrink the batch
// for CI smoke runs. Writes BENCH_policy.json (same "benchmarks" schema
// as BENCH_micro.json plus a per-combination "matrix" block); --report-out
// additionally writes the RunReport of one instrumented run of the first
// scenario under the default policy.
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/beam_policy.hpp"
#include "rate/rate_model.hpp"

namespace {

using namespace st;
using namespace st::sim::literals;

/// Everything one (scenario, policy) combination produces: the protocol
/// aggregate, the merged rate-layer totals, and the batch wall time.
struct Outcome {
  st::bench::Aggregate agg;
  rate::RateStats rate;
  double wall_seconds = 0.0;
};

Outcome run_combination(const core::ScenarioSpec& spec,
                        const std::vector<std::uint64_t>& run_seeds) {
  const auto start = std::chrono::steady_clock::now();
  const std::vector<core::ScenarioResult> results = fleet::parallel_map(
      run_seeds.size(), /*n_threads=*/0, [&](std::size_t i) {
        core::ScenarioSpec run_spec = spec;
        run_spec.seed = run_seeds[i];
        return core::run_scenario(run_spec);
      });
  Outcome outcome;
  outcome.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  for (const core::ScenarioResult& result : results) {
    outcome.agg.absorb(result);
    outcome.rate.merge(result.rate);
  }
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  const st::bench::ObsOptions obs = st::bench::consume_obs_options(argc, argv);
  const st::bench::SpecOptions spec_options =
      st::bench::consume_spec_options(argc, argv);
  std::size_t n_runs = 12;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--runs" && i + 1 < argc) {
      n_runs = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg.starts_with("--runs=")) {
      n_runs = std::strtoull(arg.substr(7).c_str(), nullptr, 10);
    } else {
      std::cerr << "bench_policy_compare: unknown option '" << arg << "'\n";
      return 2;
    }
  }
  if (n_runs == 0) {
    std::cerr << "bench_policy_compare: --runs must be positive\n";
    return 2;
  }

  st::bench::print_header(
      "E15: beam-management policy comparison over the rate layer",
      "extension — Silent Tracker's adjacent rule vs hierarchical "
      "coarse-to-fine vs blind switching, scored by throughput and outage");

  const auto run_seeds = st::bench::seeds(n_runs);

  std::vector<std::string> scenario_names = {"paper_walk", "paper_rotation",
                                             "paper_vehicular", "grid_walk"};
  if (!spec_options.preset.empty()) {
    scenario_names = {spec_options.preset};
  }

  const core::BeamPolicyKind policies[] = {
      core::BeamPolicyKind::kSilentTracker,
      core::BeamPolicyKind::kHierarchical,
      core::BeamPolicyKind::kBlind,
  };

  Table table({"scenario", "policy", "tput Mb/s", "SINR dB", "outage ms/run",
               "events/run", "success [CI]", "interruption p50 ms",
               "aligned %"});

  struct Entry {
    std::string scenario;
    std::string policy;
    Outcome outcome;
  };
  std::vector<Entry> entries;

  for (const std::string& name : scenario_names) {
    core::ScenarioSpec base = core::preset_by_name(name);
    if (spec_options.duration_ms > 0) {
      base.duration = sim::Duration::milliseconds(spec_options.duration_ms);
    }
    base.rate.enabled = true;
    for (const core::BeamPolicyKind kind : policies) {
      core::ScenarioSpec spec = base;
      for (core::UeProfile& ue : spec.ues) {
        ue.beam_policy.kind = kind;
      }
      const Outcome outcome =
          run_combination(core::SpecBuilder(std::move(spec)).build(),
                          run_seeds);
      const double runs = static_cast<double>(run_seeds.size());
      table.row()
          .cell(name)
          .cell(std::string(core::to_string(kind)))
          .cell(outcome.rate.mean_throughput_mbps(), 1)
          .cell(outcome.rate.mean_sinr_db(), 1)
          .cell(outcome.rate.outage_ms / runs, 1)
          .cell(static_cast<double>(outcome.rate.outage_events) / runs, 2)
          .cell(st::bench::rate_with_ci(outcome.agg.handover_success))
          .cell(outcome.agg.interruption_ms.empty()
                    ? std::string("-")
                    : format_double(outcome.agg.interruption_ms.median(), 1))
          .cell(outcome.agg.alignment_fraction.empty()
                    ? std::string("-")
                    : format_double(
                          100.0 * outcome.agg.alignment_fraction.mean(), 1));
      entries.push_back({name, std::string(core::to_string(kind)), outcome});
    }
  }
  table.print(std::cout);

  // BENCH_micro.json schema: a "benchmarks" array of {name, ns_per_op,
  // items_per_second}, plus a named per-combination matrix.
  std::ofstream out("BENCH_policy.json");
  out << "{\n  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    const double runs = static_cast<double>(run_seeds.size());
    out << "    {\"name\": \"policy/" << e.scenario << "/" << e.policy
        << "\", \"ns_per_op\": " << e.outcome.wall_seconds * 1e9 / runs
        << ", \"items_per_second\": "
        << (e.outcome.wall_seconds > 0.0 ? runs / e.outcome.wall_seconds : 0.0)
        << "}" << (i + 1 < entries.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"matrix\": {\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    const st::bench::Aggregate& agg = e.outcome.agg;
    const rate::RateStats& rate = e.outcome.rate;
    const double runs = static_cast<double>(run_seeds.size());
    out << "    \"" << e.scenario << "/" << e.policy << "\": {"
        << "\"throughput_mbps\": " << rate.mean_throughput_mbps()
        << ", \"mean_sinr_db\": " << rate.mean_sinr_db()
        << ", \"mean_cqi\": " << rate.mean_cqi()
        << ", \"outage_ms_per_run\": " << rate.outage_ms / runs
        << ", \"outage_events_per_run\": "
        << static_cast<double>(rate.outage_events) / runs
        << ", \"outage_fraction\": " << rate.outage_fraction()
        << ", \"handover_success\": " << agg.handover_success.rate()
        << ", \"handovers\": " << agg.handover_success.trials()
        << ", \"interruption_p50_ms\": "
        << (agg.interruption_ms.empty() ? 0.0 : agg.interruption_ms.median())
        << ", \"alignment_fraction\": "
        << (agg.alignment_fraction.empty() ? 0.0
                                           : agg.alignment_fraction.mean())
        << "}" << (i + 1 < entries.size() ? "," : "") << "\n";
  }
  out << "  },\n  \"runs_per_combination\": " << run_seeds.size() << "\n}\n";
  std::cout << "\nwrote BENCH_policy.json\n"
            << "Shape check: silent_tracker holds alignment with two probes "
               "per drop; hierarchical pays a coarse sweep plus a refine "
               "round per drop but recovers losses; blind switches without "
               "confirming and bleeds alignment under rotation.\n";

  // The instrumented re-run covers the first scenario under the paper's
  // default policy.
  if (obs.enabled()) {
    core::ScenarioSpec spec = core::preset_by_name(scenario_names.front());
    if (spec_options.duration_ms > 0) {
      spec.duration = sim::Duration::milliseconds(spec_options.duration_ms);
    }
    if (!st::bench::write_observability(
            obs, core::SpecBuilder(std::move(spec)).build())) {
      return 1;
    }
  }
  return 0;
}
