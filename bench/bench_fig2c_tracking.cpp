// E3 — Fig. 2c: Silent Tracker evaluation across the three mobility
// scenarios: human walk (1.4 m/s), device rotation (120 °/s), vehicular
// motion (20 mph).
//
// Paper claim to reproduce: "Silent Tracker maintains the mobile's
// receive beam aligned to the potential target base station's transmit
// beam till the successful conclusion of handover in three mobility
// scenarios." The harness reports, per scenario: the fraction of tracked
// time within 3 dB of the ground-truth best receive beam, the handover
// success rate, the fraction of soft handovers, alignment at handover
// completion, and the service interruption. It also prints a downsampled
// tracked-vs-best RSS series of one run per scenario — the raw material
// of the paper's Fig. 2c time plots.
#include <iostream>

#include "bench_util.hpp"

namespace {

using namespace st;
using namespace st::sim::literals;

void print_series(const core::ScenarioResult& result) {
  const auto tracked = result.neighbour_tracked_rss_dbm.points();
  const auto best = result.neighbour_best_rss_dbm.points();
  std::cout << "  t_ms    tracked_dBm  best_dBm  gap_dB\n";
  const std::size_t step = std::max<std::size_t>(1, tracked.size() / 14);
  for (std::size_t i = 0; i < tracked.size(); i += step) {
    std::printf("  %-7.0f %-12.2f %-9.2f %-6.2f\n", tracked[i].t.ms(),
                tracked[i].value, best[i].value,
                best[i].value - tracked[i].value);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const st::bench::ObsOptions obs_options =
      st::bench::consume_obs_options(argc, argv);
  st::bench::print_header(
      "E3: Silent Tracker tracking evaluation",
      "Fig. 2c — beam kept aligned until handover completion, three "
      "mobility scenarios");

  const auto run_seeds = st::bench::seeds(25);

  Table table({"scenario", "runs", "handover success [CI]", "soft [CI]",
               "aligned@completion [CI]", "time aligned %",
               "interruption p50 ms", "p95 ms"});

  for (const auto mobility :
       {core::MobilityScenario::kHumanWalk, core::MobilityScenario::kRotation,
        core::MobilityScenario::kVehicular}) {
    const st::bench::Aggregate agg =
        st::bench::run_batch_parallel(core::preset::paper(mobility), run_seeds);

    table.row()
        .cell(std::string(core::to_string(mobility)))
        .cell(run_seeds.size())
        .cell(st::bench::rate_with_ci(agg.handover_success))
        .cell(st::bench::rate_with_ci(agg.soft_fraction))
        .cell(st::bench::rate_with_ci(agg.aligned_at_completion))
        .cell(100.0 * agg.alignment_fraction.mean(), 1);
    if (agg.interruption_ms.empty()) {
      table.cell("-").cell("-");
    } else {
      table.cell(agg.interruption_ms.median(), 1)
          .cell(agg.interruption_ms.percentile(95.0), 1);
    }
  }
  table.print(std::cout);

  std::cout << "\n--- tracked vs best neighbour RSS, one run per scenario "
               "(Fig. 2c raw series) ---\n";
  for (const auto mobility :
       {core::MobilityScenario::kHumanWalk, core::MobilityScenario::kRotation,
        core::MobilityScenario::kVehicular}) {
    const core::ScenarioSpec spec =
        core::SpecBuilder(core::preset::paper(mobility)).seed(1000).build();
    std::cout << "\n[" << core::to_string(mobility) << "]\n";
    print_series(core::run_scenario(spec));
  }

  std::cout << "\nShape check (paper): alignment maintained to handover "
               "completion in all three scenarios; handovers predominantly "
               "soft.\n";

  // Optional observability outputs: one instrumented human-walk run.
  const core::ScenarioSpec traced =
      core::SpecBuilder(core::preset::paper_walk()).seed(1000).build();
  return st::bench::write_observability(obs_options, traced) ? 0 : 1;
}
